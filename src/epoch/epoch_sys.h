// Epoch-based group commit (docs/epoch.md, DESIGN.md §13).
//
// EpochSys amortizes persistence fences *across* threads. A global epoch
// clock groups transactions; committing threads hand their staged cache lines
// to a single background advancer thread instead of flushing and fencing
// themselves. The advancer:
//
//   * services *delegated publications* — the blocking pre-mutation handoff
//     of undo logging — by flushing every concurrently waiting thread's
//     staged log lines and issuing ONE fence that retires them all, and
//   * *closes* an epoch when it ages out (bounded buffered-durability
//     window), when enough bytes/transactions have staged, on Sync(), or at
//     shutdown: it advances the clock so new transactions join the next
//     epoch, waits for the closing epoch's in-flight transactions to finish
//     (still servicing their publications — they may be blocked on exactly
//     that), drains all deferred lines in one deduplicated pass, fences
//     once, and then persistently retires the epoch by bumping the log
//     space's retirement record.
//
// The retirement record is the single commit point for every transaction of
// the epoch: recovery replays a tagged log chain only if its tag is above the
// record, so a crash before retirement rolls back ALL of the epoch's
// transactions (their undo entries are still live) and a crash after finds
// every mutation durable. No prefix of an epoch can survive.
//
// Why the advancer issues the flushes itself (not just the fence): a cache
// line a thread merely *staged* can be evicted-dirty at any moment, so the
// undo-before-mutate invariant needs the entry lines written back and fenced
// before the caller's first in-place store. clwb is cache-coherent — the
// advancer's flush writes back the latest value regardless of which core
// stored it — and keeping flush+fence on one thread also matches the
// fence-retires-own-flushes model crashsim verifies against.
#ifndef SRC_EPOCH_EPOCH_SYS_H_
#define SRC_EPOCH_EPOCH_SYS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/pmem/flush.h"
#include "src/tx/epoch_port.h"
#include "src/tx/log_format.h"

namespace puddles {

struct EpochOptions {
  // Maximum age of a dirty epoch before the advancer force-closes it: the
  // bound on the buffered-durability window (docs/epoch.md). A committed
  // transaction is durable no later than ~this after its epoch first dirtied
  // (plus the drain itself).
  uint64_t max_epoch_age_us = 500;
  // Close early once this many deferred bytes have staged (pre-dedup), so
  // epochs stay well below log capacity and continuation chaining stays rare.
  uint64_t max_staged_bytes = 64 * 1024;
  // ... or once this many transactions have joined the epoch.
  uint64_t max_epoch_txs = 4096;
};

class EpochSys {
 public:
  // Persists the retirement record for an epoch (the runtime injects a
  // PersistStore64 on the log space header). Called from the advancer thread
  // only, after the epoch's drain fence.
  using RetireFn = std::function<void(uint64_t epoch)>;
  // Recycles a continuation log region after its epoch retired (persistent
  // Reset + return to the thread's spare list). Called on the owning thread.
  using ReleaseFn = std::function<void(LogRegion*)>;

  EpochSys(const EpochOptions& options, RetireFn retire);
  ~EpochSys();  // Stop()s.

  EpochSys(const EpochSys&) = delete;
  EpochSys& operator=(const EpochSys&) = delete;

  // Spawns the advancer. Must be called (once) before any port is used.
  puddles::Status Start();

  // Closes and retires any outstanding dirty epoch, then joins the advancer.
  // No transaction may be active; ports must not be used afterwards. Safe to
  // call twice.
  void Stop();

  // Blocks until every transaction that joined an epoch before this call is
  // persistently retired — the sync-on-demand half of the durability
  // contract. Returns immediately when nothing is outstanding.
  void Sync();

  // Creates the per-thread port handed to TxTarget::epoch. The port must not
  // outlive this EpochSys; `release_grown` must be callable on the port's
  // owning thread.
  std::unique_ptr<EpochPort> CreatePort(ReleaseFn release_grown);

  // Monitoring/tests (take the lock; not for hot paths).
  uint64_t retired_epoch() const;
  uint64_t current_epoch() const;

 private:
  class Port;

  // All *Locked methods require mu_; those taking the unique_lock may drop
  // and reacquire it around the flush work.
  bool ShouldCloseLocked() const;
  void MarkOpenDirtyLocked();
  void ServicePublishLocked(std::unique_lock<std::mutex>& lock);
  void CloseEpochLocked(std::unique_lock<std::mutex>& lock);
  puddles::Status WaitRetiredLocked(std::unique_lock<std::mutex>& lock, uint64_t epoch);
  void DelegatePublish(pmem::FlushBatch* batch);
  void AdvancerMain();

  const EpochOptions options_;
  const RetireFn retire_;

  mutable std::mutex mu_;
  std::condition_variable advancer_cv_;  // Advancer waits for work/timer.
  std::condition_variable client_cv_;    // Publishers and retirement waiters.
  std::thread advancer_;

  uint64_t current_ = 1;   // Open epoch; 0 is reserved for immediate mode.
  uint64_t retired_ = 0;   // Highest persistently retired epoch (mirror).
  uint64_t closing_ = 0;   // Epoch mid-close (drain in progress); 0 = none.
  bool stop_ = false;
  bool close_requested_ = false;  // Sync()/retirement waiters force a close.

  // Open-epoch state. `dirty` flips on the first join/stage and starts the
  // age clock; an idle epoch is never closed (no fences burned when idle).
  bool open_dirty_ = false;
  std::chrono::steady_clock::time_point open_deadline_{};
  uint64_t open_txs_ = 0;       // Joined (lifetime) — close threshold.
  uint64_t active_open_ = 0;    // Still inside Begin..Commit/Abort.
  uint64_t active_closing_ = 0; // Same, for the closing epoch's drain wait.
  pmem::FlushBatch deferred_open_;     // Close-time write-back set.
  pmem::FlushBatch deferred_closing_;

  // Delegated-publication tickets: a publisher splices its lines, takes
  // ticket publish_seq_, and waits until publish_done_ covers it. One
  // advancer flush+fence cycle retires every ticket spliced before it.
  pmem::FlushBatch publish_pending_;
  uint64_t publish_seq_ = 0;
  uint64_t publish_done_ = 0;

  // Advancer-only scratch batch (reused to avoid per-cycle allocation).
  pmem::FlushBatch drain_batch_;
};

}  // namespace puddles

#endif  // SRC_EPOCH_EPOCH_SYS_H_
