#include "src/epoch/epoch_sys.h"

#include <algorithm>
#include <utility>

#include "src/stats/stats.h"

namespace puddles {

// ---------------------------------------------------------------------------
// Per-thread port. All methods run on the owning thread; shared state is
// touched under sys_->mu_ only. pending_epoch_/tail_ are owner-thread-only.
// ---------------------------------------------------------------------------
class EpochSys::Port : public EpochPort {
 public:
  Port(EpochSys* sys, ReleaseFn release_grown)
      : sys_(sys), release_grown_(std::move(release_grown)) {}

  puddles::Status JoinTx(LogRegion* head, std::vector<LogRegion*>* chain) override {
    std::unique_lock<std::mutex> lock(sys_->mu_);
    if (pending_epoch_ != 0 && pending_epoch_ != sys_->current_) {
      // The log still holds entries of a closed (or closing) epoch. Entries
      // from two epochs in one log would break the single-tag replay gate,
      // so wait for that epoch's retirement, then recycle the log: the head
      // volatile-only (its stale tag gates it out of replay either way), the
      // continuation regions with a persistent reset (they have no gate of
      // their own — a stale region re-linked by a later epoch would replay
      // retired undo entries).
      RETURN_IF_ERROR(sys_->WaitRetiredLocked(lock, pending_epoch_));
      head->RearmVolatile();
      for (LogRegion* region : tail_) {
        if (release_grown_) {
          release_grown_(region);
        }
      }
      tail_.clear();
      pending_epoch_ = 0;
    }
    if (sys_->stop_) {
      return FailedPreconditionError("epoch system stopped");
    }
    if (pending_epoch_ == 0) {
      pending_epoch_ = sys_->current_;
      head->SetEpochTagVolatile(pending_epoch_);
    }
    ++sys_->active_open_;
    ++sys_->open_txs_;
    sys_->MarkOpenDirtyLocked();
    if (sys_->open_txs_ >= sys_->options_.max_epoch_txs) {
      sys_->advancer_cv_.notify_all();
    }
    PUDDLES_COUNT(kEpochTxs);
    // Re-adopt continuation regions grown by this epoch's earlier
    // transactions, so appends resume at the chain tail instead of
    // clobbering the head's next_log link.
    chain->insert(chain->end(), tail_.begin(), tail_.end());
    return OkStatus();
  }

  void Publish(pmem::FlushBatch* batch) override { sys_->DelegatePublish(batch); }

  void StageDeferred(pmem::FlushBatch* batch) override {
    if (batch->empty()) {
      return;
    }
    std::lock_guard<std::mutex> lock(sys_->mu_);
    // Route by the transaction's epoch: it may have joined an epoch that is
    // now closing (the advance happened mid-transaction), in which case its
    // lines belong to the closing drain, not the new open epoch.
    if (sys_->closing_ != 0 && pending_epoch_ == sys_->closing_) {
      sys_->deferred_closing_.Splice(batch);
      return;
    }
    sys_->deferred_open_.Splice(batch);
    sys_->MarkOpenDirtyLocked();
    if (sys_->deferred_open_.staged_bytes() >= sys_->options_.max_staged_bytes) {
      sys_->advancer_cv_.notify_all();
    }
  }

  void LeaveTx(const std::vector<LogRegion*>& chain) override {
    std::lock_guard<std::mutex> lock(sys_->mu_);
    tail_.assign(chain.begin() + 1, chain.end());
    if (sys_->closing_ != 0 && pending_epoch_ == sys_->closing_) {
      if (--sys_->active_closing_ == 0) {
        sys_->advancer_cv_.notify_all();  // Unblock the drain wait.
      }
    } else {
      --sys_->active_open_;
    }
  }

  puddles::Status Quiesce(LogRegion* head) override {
    if (pending_epoch_ == 0) {
      return OkStatus();
    }
    std::unique_lock<std::mutex> lock(sys_->mu_);
    RETURN_IF_ERROR(sys_->WaitRetiredLocked(lock, pending_epoch_));
    head->RearmVolatile();
    for (LogRegion* region : tail_) {
      if (release_grown_) {
        release_grown_(region);
      }
    }
    tail_.clear();
    pending_epoch_ = 0;
    return OkStatus();
  }

 private:
  EpochSys* sys_;
  ReleaseFn release_grown_;
  // Epoch whose entries occupy this thread's log; 0 = log is clean.
  uint64_t pending_epoch_ = 0;
  // Continuation regions grown during the pending epoch, in chain order.
  std::vector<LogRegion*> tail_;
};

// ---------------------------------------------------------------------------
// EpochSys
// ---------------------------------------------------------------------------

EpochSys::EpochSys(const EpochOptions& options, RetireFn retire)
    : options_(options), retire_(std::move(retire)) {}

EpochSys::~EpochSys() { Stop(); }

puddles::Status EpochSys::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (advancer_.joinable()) {
    return FailedPreconditionError("epoch advancer already running");
  }
  if (stop_) {
    return FailedPreconditionError("epoch system stopped");
  }
  advancer_ = std::thread([this] { AdvancerMain(); });
  return OkStatus();
}

void EpochSys::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    advancer_cv_.notify_all();
  }
  if (advancer_.joinable()) {
    advancer_.join();
  }
  client_cv_.notify_all();
}

void EpochSys::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = 0;
  if (open_dirty_) {
    target = current_;  // WaitRetiredLocked will request the close.
  } else if (closing_ != 0) {
    target = closing_;  // A close is already in flight; just wait it out.
  } else {
    return;  // current_ == retired_ + 1 and the open epoch is idle.
  }
  (void)WaitRetiredLocked(lock, target);
}

std::unique_ptr<EpochPort> EpochSys::CreatePort(ReleaseFn release_grown) {
  return std::make_unique<Port>(this, std::move(release_grown));
}

uint64_t EpochSys::retired_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_;
}

uint64_t EpochSys::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void EpochSys::MarkOpenDirtyLocked() {
  if (!open_dirty_) {
    open_dirty_ = true;
    open_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(options_.max_epoch_age_us);
    advancer_cv_.notify_all();  // The advancer may be in an indefinite wait.
  }
}

bool EpochSys::ShouldCloseLocked() const {
  if (!open_dirty_) {
    return false;
  }
  return stop_ || close_requested_ ||
         std::chrono::steady_clock::now() >= open_deadline_ ||
         deferred_open_.staged_bytes() >= options_.max_staged_bytes ||
         open_txs_ >= options_.max_epoch_txs;
}

puddles::Status EpochSys::WaitRetiredLocked(std::unique_lock<std::mutex>& lock,
                                            uint64_t epoch) {
  if (retired_ >= epoch) {
    return OkStatus();
  }
  if (epoch == current_) {
    // The target epoch is still open; ask the advancer to close it now
    // rather than waiting out the age bound.
    close_requested_ = true;
    advancer_cv_.notify_all();
  }
  PUDDLES_COUNT(kEpochSyncWaits);
  PUDDLES_SCOPED_TIMER(kEpochSyncWaitTicks);
  client_cv_.wait(lock, [&] { return retired_ >= epoch; });
  return OkStatus();
}

void EpochSys::DelegatePublish(pmem::FlushBatch* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  publish_pending_.Splice(batch);
  const uint64_t ticket = ++publish_seq_;
  PUDDLES_COUNT(kEpochPublishWaits);
  advancer_cv_.notify_all();
  PUDDLES_SCOPED_TIMER(kEpochSyncWaitTicks);
  client_cv_.wait(lock, [&] { return publish_done_ >= ticket; });
}

// One delegated-publication service cycle: flush everything spliced so far,
// fence once, retire every waiting ticket. Runs on the advancer; drops the
// lock around the flush work so publishers can keep splicing.
void EpochSys::ServicePublishLocked(std::unique_lock<std::mutex>& lock) {
  drain_batch_.Splice(&publish_pending_);
  const uint64_t upto = publish_seq_;
  lock.unlock();
  drain_batch_.FlushPending();
  pmem::Fence();
  lock.lock();
  publish_done_ = std::max(publish_done_, upto);
  PUDDLES_COUNT(kEpochPublishCycles);
  client_cv_.notify_all();
}

// Closes the open epoch: advance the clock, drain, fence once, retire.
void EpochSys::CloseEpochLocked(std::unique_lock<std::mutex>& lock) {
  const uint64_t closing = current_;
  closing_ = closing;
  ++current_;  // New transactions join the next epoch from here on.
  active_closing_ = active_open_;
  active_open_ = 0;
  open_txs_ = 0;
  open_dirty_ = false;
  deferred_closing_.Splice(&deferred_open_);

  // Wait for the closing epoch's in-flight transactions, servicing delegated
  // publications meanwhile — a closing transaction may be blocked on exactly
  // such a publication, so parking without servicing would deadlock.
  while (active_closing_ > 0) {
    if (!publish_pending_.empty()) {
      ServicePublishLocked(lock);
      continue;
    }
    advancer_cv_.wait(lock);
  }

  // Drain: the epoch's deferred lines, plus any publication spliced since
  // the last service cycle (flushing next-epoch lines early is harmless —
  // their tickets retire under this fence too).
  const uint64_t upto = publish_seq_;
  const uint64_t drained_bytes = deferred_closing_.staged_bytes();
  drain_batch_.Splice(&publish_pending_);
  drain_batch_.Splice(&deferred_closing_);
  lock.unlock();
  drain_batch_.FlushPending();
  pmem::Fence();      // THE epoch fence: every line of the epoch is durable.
  retire_(closing);   // Retirement record: the epoch's single commit point.
  lock.lock();
  publish_done_ = std::max(publish_done_, upto);
  retired_ = closing;
  closing_ = 0;
  PUDDLES_COUNT(kEpochAdvanced);
  PUDDLES_COUNT_N(kEpochStagedBytes, drained_bytes);
  client_cv_.notify_all();
}

void EpochSys::AdvancerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!publish_pending_.empty()) {
      ServicePublishLocked(lock);
      continue;
    }
    if (ShouldCloseLocked()) {
      CloseEpochLocked(lock);
      close_requested_ = false;
      client_cv_.notify_all();
      continue;
    }
    if (close_requested_ && !open_dirty_) {
      // Sync() raced an already-idle epoch; nothing to close.
      close_requested_ = false;
      client_cv_.notify_all();
    }
    if (stop_) {
      return;
    }
    if (open_dirty_) {
      advancer_cv_.wait_until(lock, open_deadline_);
    } else {
      advancer_cv_.wait(lock);
    }
  }
}

}  // namespace puddles
