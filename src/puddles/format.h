// On-PM puddle layout (paper §4.3).
//
// A puddle is one file: | PuddleHeader page | allocator metadata | heap |.
// "A puddle has two parts, a header, and a heap. The header stores the
// puddle's metadata information like the puddle's UUID, its size, and
// allocation metadata." Everything in the header is offset/UUID-based so a
// puddle file can be copied between machines byte-for-byte; only heap
// *pointers* need rewriting, and those are found through the allocator
// metadata plus pointer maps.
#ifndef SRC_PUDDLES_FORMAT_H_
#define SRC_PUDDLES_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "src/alloc/object_heap.h"
#include "src/common/status.h"
#include "src/common/uuid.h"

namespace puddles {

inline constexpr uint64_t kPuddleMagic = 0x454c44445550ULL;  // "PUDDLE"
// Version 2 added rewrite_frontier (resumable streaming relocation, DESIGN.md
// §7). Version-1 files predate any persisted deployment of this codebase, so
// Attach rejects them instead of upgrading in place.
inline constexpr uint32_t kPuddleVersion = 2;

// Default geometry: 4 KiB header page; 2 MiB heap (paper §4.3 configures
// "4 KiB of header space for every 2 MiB of heap"; our allocator metadata is
// byte-per-256B so the metadata region scales with the heap — ~0.4 %
// overhead, documented in DESIGN.md).
inline constexpr size_t kDefaultHeapSize = 2ULL << 20;
inline constexpr size_t kPuddleHeaderPage = 4096;

enum class PuddleKind : uint32_t {
  kData = 1,      // Object heap managed by ObjectHeap.
  kLog = 2,       // Crash-consistency log (raw heap, src/tx/log_format.h).
  kLogSpace = 3,  // Directory of logs (raw heap).
  kPoolMeta = 4,  // Pool membership metadata (raw heap).
};

// Relocation / recovery state bits.
enum PuddleFlags : uint32_t {
  // The heap still contains pointers expressed relative to prev_base_addr;
  // they must be rewritten to base_addr before the application may see the
  // puddle (frontier state, §4.2).
  kPuddleNeedsRewrite = 1u << 0,
};

struct PuddleHeader {
  uint64_t magic;
  uint32_t version;
  PuddleKind kind;
  Uuid uuid;
  Uuid pool_uuid;  // Nil when the puddle is not part of a pool.
  uint64_t file_size;
  uint64_t heap_size;
  uint64_t meta_offset;  // Allocator metadata region (0 for raw-heap kinds).
  uint64_t meta_size;
  uint64_t heap_offset;
  // Current address of the *file start* in the global puddle space. The heap
  // lives at base_addr + heap_offset. Pointers in this puddle's heap are
  // meaningful relative to this assignment.
  uint64_t base_addr;
  // During relocation: the address the heap's embedded pointers still assume.
  uint64_t prev_base_addr;
  // Rewrite frontier (§4.2, DESIGN.md §7): while kPuddleNeedsRewrite is set,
  // every live heap object with walk index < rewrite_frontier has been fully
  // translated AND its dirtied lines fenced durable. A crash mid-rewrite
  // resumes from here instead of re-walking the whole heap; the index is over
  // ObjectHeap::ForEachObject's address-ordered walk, which is stable because
  // the heap is quiesced during relocation. Meaningless when the flag is
  // clear.
  uint64_t rewrite_frontier;
  uint32_t flags;
  uint32_t reserved;
};
static_assert(sizeof(PuddleHeader) <= kPuddleHeaderPage, "header must fit its page");

struct PuddleParams {
  PuddleKind kind = PuddleKind::kData;
  size_t heap_size = kDefaultHeapSize;
  Uuid uuid;       // Required.
  Uuid pool_uuid;  // Optional.
  uint64_t base_addr = 0;
};

// A mapped view over one puddle file.
class Puddle {
 public:
  // Total file size for a puddle with the given heap (power of two).
  static size_t FileSizeFor(PuddleKind kind, size_t heap_size);

  // Formats a freshly created file mapping of `file_size` bytes.
  static puddles::Status Format(void* base, size_t file_size, const PuddleParams& params);

  // Validates and attaches to an existing mapping.
  static puddles::Result<Puddle> Attach(void* base, size_t file_size);

  Puddle() = default;

  PuddleHeader* header() const { return header_; }
  const Uuid& uuid() const { return header_->uuid; }
  PuddleKind kind() const { return header_->kind; }
  uint8_t* heap() const {
    return reinterpret_cast<uint8_t*>(header_) + header_->heap_offset;
  }
  size_t heap_size() const { return header_->heap_size; }
  uint64_t base_addr() const { return header_->base_addr; }
  size_t file_size() const { return header_->file_size; }

  // The heap's address when mapped at `base_addr` (even if this view is
  // mapped elsewhere, e.g. inside the daemon).
  uint64_t heap_addr_at_base() const { return header_->base_addr + header_->heap_offset; }

  bool needs_rewrite() const { return (header_->flags & kPuddleNeedsRewrite) != 0; }
  uint64_t rewrite_frontier() const { return header_->rewrite_frontier; }

  // Object allocator over this puddle's heap (data puddles only).
  puddles::Result<ObjectHeap> object_heap(LogSink sink = {}) const;

  // Updates the persistent base-address assignment, recording the previous
  // one, setting the needs-rewrite flag, and resetting the rewrite frontier
  // (relocation step 1, §4.2).
  void AssignNewBase(uint64_t new_base);

  // Persists rewrite progress: all objects with walk index < next_index are
  // translated. The caller must have fenced every heap line it dirtied for
  // those objects BEFORE calling — the frontier may never claim more progress
  // than is durable.
  void AdvanceRewriteFrontier(uint64_t next_index);

  // Clears the rewrite state after all pointers were translated. Ordering:
  // the flag clears durably before the frontier resets, so a crash inside
  // this call either leaves (flag set, frontier = final) — a resume that
  // skips everything — or a clean puddle; never (flag set, frontier = 0).
  void CompleteRewrite();

 private:
  explicit Puddle(PuddleHeader* header) : header_(header) {}

  PuddleHeader* header_ = nullptr;
};

}  // namespace puddles

#endif  // SRC_PUDDLES_FORMAT_H_
