#include "src/puddles/pool_meta.h"

#include <cstring>

namespace puddles {
namespace {

// Members and old-base slots are carved from the same heap area.
constexpr size_t kPerMemberBytes = sizeof(Uuid) + sizeof(uint64_t);

uint32_t CapacityFor(size_t heap_size) {
  return static_cast<uint32_t>((heap_size - sizeof(PoolMetaHeader)) / kPerMemberBytes);
}

}  // namespace

puddles::Status PoolMetaView::Format(const Puddle& meta_puddle, const Uuid& pool_uuid,
                                     const char* name) {
  if (meta_puddle.kind() != PuddleKind::kPoolMeta) {
    return InvalidArgumentError("pool meta must live in a kPoolMeta puddle");
  }
  if (std::strlen(name) >= kPoolNameMax) {
    return InvalidArgumentError("pool name too long");
  }
  auto* header = reinterpret_cast<PoolMetaHeader*>(meta_puddle.heap());
  std::memset(header, 0, sizeof(PoolMetaHeader));
  header->magic = kPoolMetaMagic;
  header->pool_uuid = pool_uuid;
  std::strncpy(header->name, name, kPoolNameMax - 1);
  header->root_puddle = Uuid::Nil();
  header->root_offset = 0;
  header->num_members = 0;
  // Zero the translation table region.
  const uint32_t capacity = CapacityFor(meta_puddle.heap_size());
  auto* members = reinterpret_cast<Uuid*>(header + 1);
  auto* old_bases = reinterpret_cast<uint64_t*>(members + capacity);
  std::memset(old_bases, 0, capacity * sizeof(uint64_t));
  pmem::FlushFence(header, sizeof(PoolMetaHeader));
  pmem::FlushFence(old_bases, capacity * sizeof(uint64_t));
  return OkStatus();
}

puddles::Result<PoolMetaView> PoolMetaView::Attach(const Puddle& meta_puddle) {
  if (meta_puddle.kind() != PuddleKind::kPoolMeta) {
    return InvalidArgumentError("not a pool meta puddle");
  }
  auto* header = reinterpret_cast<PoolMetaHeader*>(meta_puddle.heap());
  if (header->magic != kPoolMetaMagic) {
    return DataLossError("pool meta: bad magic");
  }
  const uint32_t capacity = CapacityFor(meta_puddle.heap_size());
  auto* members = reinterpret_cast<Uuid*>(header + 1);
  auto* old_bases = reinterpret_cast<uint64_t*>(members + capacity);
  if (header->num_members > capacity) {
    return DataLossError("pool meta: member count exceeds capacity");
  }
  return PoolMetaView(header, members, old_bases, capacity);
}

puddles::Status PoolMetaView::AddMember(const Uuid& uuid) {
  if (header_->num_members >= capacity_) {
    return OutOfMemoryError("pool meta member list full");
  }
  // Publish ordering: slot first, count after.
  members_[header_->num_members] = uuid;
  old_bases_[header_->num_members] = 0;
  pmem::Flush(&members_[header_->num_members], sizeof(Uuid));
  pmem::FlushFence(&old_bases_[header_->num_members], sizeof(uint64_t));
  header_->num_members++;
  pmem::FlushFence(&header_->num_members, sizeof(header_->num_members));
  return OkStatus();
}

puddles::Status PoolMetaView::ReplaceMember(uint32_t i, const Uuid& uuid) {
  if (i >= header_->num_members) {
    return OutOfRangeError("pool meta member index");
  }
  members_[i] = uuid;
  pmem::FlushFence(&members_[i], sizeof(Uuid));
  return OkStatus();
}

void PoolMetaView::SetRoot(const Uuid& puddle, uint64_t heap_offset) {
  header_->root_puddle = puddle;
  header_->root_offset = heap_offset;
  pmem::FlushFence(&header_->root_puddle, sizeof(Uuid) + sizeof(uint64_t));
}

bool PoolMetaView::HasMember(const Uuid& uuid) const {
  for (uint32_t i = 0; i < header_->num_members; ++i) {
    if (members_[i] == uuid) {
      return true;
    }
  }
  return false;
}

void PoolMetaView::SetMemberOldBase(uint32_t i, uint64_t old_base) {
  old_bases_[i] = old_base;
  pmem::FlushFence(&old_bases_[i], sizeof(uint64_t));
}

void PoolMetaView::ClearTranslationTable() {
  std::memset(old_bases_, 0, header_->num_members * sizeof(uint64_t));
  pmem::FlushFence(old_bases_, header_->num_members * sizeof(uint64_t));
}

bool PoolMetaView::HasTranslations() const {
  for (uint32_t i = 0; i < header_->num_members; ++i) {
    if (old_bases_[i] != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace puddles
