#include "src/puddles/format.h"

#include <cstring>

#include "src/common/align.h"
#include "src/pmem/flush.h"

namespace puddles {
namespace {

bool KindUsesObjectHeap(PuddleKind kind) { return kind == PuddleKind::kData; }

}  // namespace

size_t Puddle::FileSizeFor(PuddleKind kind, size_t heap_size) {
  size_t meta = KindUsesObjectHeap(kind)
                    ? AlignUp(ObjectHeap::MetaSize(heap_size), kPageSize)
                    : 0;
  return kPuddleHeaderPage + meta + heap_size;
}

puddles::Status Puddle::Format(void* base, size_t file_size, const PuddleParams& params) {
  if (!IsPowerOfTwo(params.heap_size)) {
    return InvalidArgumentError("puddle heap size must be a power of two");
  }
  if (params.uuid.is_nil()) {
    return InvalidArgumentError("puddle needs a UUID");
  }
  const size_t expected = FileSizeFor(params.kind, params.heap_size);
  if (file_size != expected) {
    return InvalidArgumentError("puddle file size does not match geometry");
  }

  auto* header = static_cast<PuddleHeader*>(base);
  std::memset(header, 0, sizeof(PuddleHeader));
  header->magic = kPuddleMagic;
  header->version = kPuddleVersion;
  header->kind = params.kind;
  header->uuid = params.uuid;
  header->pool_uuid = params.pool_uuid;
  header->file_size = file_size;
  header->heap_size = params.heap_size;
  header->base_addr = params.base_addr;
  header->prev_base_addr = 0;
  header->rewrite_frontier = 0;
  header->flags = 0;

  const size_t meta_size = KindUsesObjectHeap(params.kind)
                               ? AlignUp(ObjectHeap::MetaSize(params.heap_size), kPageSize)
                               : 0;
  header->meta_offset = meta_size != 0 ? kPuddleHeaderPage : 0;
  header->meta_size = meta_size;
  header->heap_offset = kPuddleHeaderPage + meta_size;

  auto* bytes = static_cast<uint8_t*>(base);
  if (KindUsesObjectHeap(params.kind)) {
    RETURN_IF_ERROR(ObjectHeap::Format(bytes + header->meta_offset,
                                       bytes + header->heap_offset, params.heap_size));
  }
  pmem::FlushFence(base, kPuddleHeaderPage + meta_size);
  return OkStatus();
}

puddles::Result<Puddle> Puddle::Attach(void* base, size_t file_size) {
  auto* header = static_cast<PuddleHeader*>(base);
  if (header->magic != kPuddleMagic) {
    return DataLossError("not a puddle: bad magic");
  }
  if (header->version != kPuddleVersion) {
    return DataLossError("puddle format version mismatch");
  }
  if (header->file_size != file_size) {
    return DataLossError("puddle file size mismatch");
  }
  if (header->heap_offset + header->heap_size > file_size) {
    return DataLossError("puddle heap extends past file end");
  }
  return Puddle(header);
}

puddles::Result<ObjectHeap> Puddle::object_heap(LogSink sink) const {
  if (header_->kind != PuddleKind::kData) {
    return FailedPreconditionError("only data puddles have object heaps");
  }
  auto* bytes = reinterpret_cast<uint8_t*>(header_);
  return ObjectHeap::Attach(bytes + header_->meta_offset, bytes + header_->heap_offset,
                            header_->heap_size, sink);
}

void Puddle::AssignNewBase(uint64_t new_base) {
  // Ordering: record the old base, the rewrite obligation, and a zeroed
  // frontier *before* the new assignment becomes durable, so a crash can
  // never leave a puddle claiming a base its pointers do not match without
  // (flag set, frontier = 0) forcing a full rewrite against it.
  header_->prev_base_addr = header_->base_addr;
  header_->rewrite_frontier = 0;
  header_->flags |= kPuddleNeedsRewrite;
  pmem::FlushFence(header_, sizeof(PuddleHeader));
  header_->base_addr = new_base;
  pmem::FlushFence(&header_->base_addr, sizeof(header_->base_addr));
}

void Puddle::AdvanceRewriteFrontier(uint64_t next_index) {
  header_->rewrite_frontier = next_index;
  pmem::FlushFence(&header_->rewrite_frontier, sizeof(header_->rewrite_frontier));
}

void Puddle::CompleteRewrite() {
  // The flag must clear durably before the frontier resets: a crash between
  // the two fences leaves a clean puddle with a stale (ignored) frontier,
  // whereas the reverse order could leave (flag set, frontier = 0) after a
  // finished rewrite and force a full — possibly no-longer-idempotent —
  // re-translation.
  header_->flags &= ~kPuddleNeedsRewrite;
  pmem::FlushFence(&header_->flags, sizeof(header_->flags));
  header_->prev_base_addr = 0;
  header_->rewrite_frontier = 0;
  pmem::FlushFence(header_, sizeof(PuddleHeader));
}

}  // namespace puddles
