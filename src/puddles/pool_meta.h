// Pool metadata puddle layout (paper §4.4).
//
// "Puddled and Libpuddles identify a pool as a collection of puddles and a
// designated 'root' puddle." The member list and root designation live in the
// heap of a kPoolMeta puddle. Appends are crash-safe by ordering: the new
// member slot persists before the count that publishes it.
#ifndef SRC_PUDDLES_POOL_META_H_
#define SRC_PUDDLES_POOL_META_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/pmem/flush.h"
#include "src/puddles/format.h"

namespace puddles {

inline constexpr uint64_t kPoolMetaMagic = 0x4154454d4c4f4f50ULL;  // "POOLMETA"
inline constexpr size_t kPoolNameMax = 64;

struct PoolMetaHeader {
  uint64_t magic;
  Uuid pool_uuid;
  char name[kPoolNameMax];
  Uuid root_puddle;      // Puddle holding the root object; nil until set.
  uint64_t root_offset;  // Heap offset of the root object payload; 0 = unset.
  uint32_t num_members;
  uint32_t reserved;
  // Uuid members[capacity] follows, then uint64_t old_bases[capacity]: the
  // pool's relocation translation table. old_bases[i] != 0 means member i's
  // heap content was laid out for a file base of old_bases[i] at import time;
  // pointers into that old range translate to member i's current base. The
  // table outlives individual members' rewrite flags because every flagged
  // member needs every *other* member's translation, however late it faults
  // in (§4.2 incremental relocation).
};

class PoolMetaView {
 public:
  static puddles::Status Format(const Puddle& meta_puddle, const Uuid& pool_uuid,
                                const char* name);
  static puddles::Result<PoolMetaView> Attach(const Puddle& meta_puddle);

  PoolMetaView() = default;

  const Uuid& pool_uuid() const { return header_->pool_uuid; }
  const char* name() const { return header_->name; }
  uint32_t num_members() const { return header_->num_members; }
  const Uuid& member(uint32_t i) const { return members_[i]; }
  const Uuid& root_puddle() const { return header_->root_puddle; }
  uint64_t root_offset() const { return header_->root_offset; }
  bool has_root() const { return !header_->root_puddle.is_nil(); }

  uint32_t capacity() const { return capacity_; }

  // Appends a member puddle (crash-safe publish ordering).
  puddles::Status AddMember(const Uuid& uuid);

  // Replaces member `i` (used on import when copies get fresh UUIDs).
  puddles::Status ReplaceMember(uint32_t i, const Uuid& uuid);

  // Persistently designates the root object.
  void SetRoot(const Uuid& puddle, uint64_t heap_offset);

  bool HasMember(const Uuid& uuid) const;

  // Relocation translation table (see PoolMetaHeader comment).
  uint64_t member_old_base(uint32_t i) const { return old_bases_[i]; }
  void SetMemberOldBase(uint32_t i, uint64_t old_base);
  void ClearTranslationTable();
  bool HasTranslations() const;

 private:
  PoolMetaView(PoolMetaHeader* header, Uuid* members, uint64_t* old_bases, uint32_t capacity)
      : header_(header), members_(members), old_bases_(old_bases), capacity_(capacity) {}

  PoolMetaHeader* header_ = nullptr;
  Uuid* members_ = nullptr;
  uint64_t* old_bases_ = nullptr;
  uint32_t capacity_ = 0;
};

}  // namespace puddles

#endif  // SRC_PUDDLES_POOL_META_H_
