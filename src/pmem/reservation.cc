#include "src/pmem/reservation.h"

#include <sys/mman.h>

#include <cerrno>

#include "src/common/align.h"
#include "src/common/log.h"

namespace pmem {

AddressReservation::~AddressReservation() { Release(); }

puddles::Status AddressReservation::Reserve(uintptr_t base_hint, size_t size) {
  if (reserved()) {
    return puddles::FailedPreconditionError("address space already reserved");
  }
  if (!puddles::IsAligned(base_hint, puddles::kPageSize) ||
      !puddles::IsAligned(size, puddles::kPageSize)) {
    return puddles::InvalidArgumentError("reservation base/size must be page aligned");
  }
  // Try the fixed hint first without clobbering existing mappings.
  void* base = ::mmap(reinterpret_cast<void*>(base_hint), size, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED_NOREPLACE, -1, 0);
  if (base == MAP_FAILED) {
    PUD_LOG_WARN("puddle space hint %p unavailable (%d); falling back to kernel placement",
                 reinterpret_cast<void*>(base_hint), errno);
    base = ::mmap(nullptr, size, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (base == MAP_FAILED) {
      return puddles::ErrnoError("reserve puddle space", errno);
    }
  }
  base_ = reinterpret_cast<uintptr_t>(base);
  size_ = size;
  return puddles::OkStatus();
}

void AddressReservation::Release() {
  if (reserved()) {
    ::munmap(reinterpret_cast<void*>(base_), size_);
    base_ = 0;
    size_ = 0;
    std::lock_guard<std::mutex> lock(mu_);
    claimed_.clear();
  }
}

puddles::Result<uintptr_t> AddressReservation::AllocateRange(size_t size) {
  if (!reserved()) {
    return puddles::FailedPreconditionError("no reservation");
  }
  size = puddles::AlignUp(size, puddles::kPageSize);
  std::lock_guard<std::mutex> lock(mu_);
  // First fit over the gaps between claimed ranges.
  uintptr_t cursor = base_;
  for (const auto& [start, len] : claimed_) {
    if (start - cursor >= size) {
      claimed_[cursor] = size;
      return cursor;
    }
    cursor = start + len;
  }
  if (base_ + size_ - cursor >= size) {
    claimed_[cursor] = size;
    return cursor;
  }
  return puddles::OutOfMemoryError("puddle address space exhausted");
}

puddles::Status AddressReservation::ClaimRange(uintptr_t addr, size_t size) {
  if (!reserved()) {
    return puddles::FailedPreconditionError("no reservation");
  }
  size = puddles::AlignUp(size, puddles::kPageSize);
  if (!Contains(addr) || addr + size > base_ + size_) {
    return puddles::OutOfRangeError("range outside puddle space");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Check overlap against the neighbor below and every range starting inside.
  auto it = claimed_.upper_bound(addr);
  if (it != claimed_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > addr) {
      return puddles::AlreadyExistsError("range overlaps existing claim");
    }
  }
  if (it != claimed_.end() && it->first < addr + size) {
    return puddles::AlreadyExistsError("range overlaps existing claim");
  }
  claimed_[addr] = size;
  return puddles::OkStatus();
}

bool AddressReservation::RangeFree(uintptr_t addr, size_t size) const {
  if (!Contains(addr) || addr + size > base_ + size_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = claimed_.upper_bound(addr);
  if (it != claimed_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > addr) {
      return false;
    }
  }
  return it == claimed_.end() || it->first >= addr + size;
}

puddles::Status AddressReservation::FreeRange(uintptr_t addr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = claimed_.find(addr);
  if (it == claimed_.end()) {
    return puddles::NotFoundError("range not claimed");
  }
  // Return the pages to PROT_NONE so stray pointers fault rather than read
  // stale puddle contents.
  void* remapped = ::mmap(reinterpret_cast<void*>(addr), it->second, PROT_NONE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (remapped == MAP_FAILED) {
    return puddles::ErrnoError("remap range to PROT_NONE", errno);
  }
  claimed_.erase(it);
  return puddles::OkStatus();
}

puddles::Status AddressReservation::MapFileAt(int fd, uintptr_t addr, size_t size,
                                              bool writable) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = claimed_.upper_bound(addr);
    if (it == claimed_.begin()) {
      return puddles::FailedPreconditionError("mapping target not claimed");
    }
    auto range = std::prev(it);
    if (addr < range->first || addr + size > range->first + range->second) {
      return puddles::FailedPreconditionError("mapping exceeds claimed range");
    }
  }
  int prot = PROT_READ | (writable ? PROT_WRITE : 0);
  void* base = ::mmap(reinterpret_cast<void*>(addr), size, prot, MAP_SHARED | MAP_FIXED, fd, 0);
  if (base == MAP_FAILED) {
    return puddles::ErrnoError("map puddle file", errno);
  }
  return puddles::OkStatus();
}

puddles::Status AddressReservation::UnmapToReserved(uintptr_t addr, size_t size) {
  void* remapped = ::mmap(reinterpret_cast<void*>(addr), size, PROT_NONE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (remapped == MAP_FAILED) {
    return puddles::ErrnoError("unmap to reserved", errno);
  }
  return puddles::OkStatus();
}

size_t AddressReservation::claimed_ranges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claimed_.size();
}

}  // namespace pmem
