// Persistence primitives over emulated persistent memory.
//
// The paper runs on Optane DC-PMM where durability is: store, clwb (or
// clflushopt), sfence. We emulate PM with mmap'd files (DESIGN.md §1), so the
// primitives below (a) execute the real x86 flush instructions when available,
// preserving the instruction-level cost structure, (b) maintain counters so
// tests can assert ordering discipline, and (c) feed the ShadowHeap crash
// simulator: a cache line only becomes part of the post-crash durable image
// once it has been Flush()ed before the simulated failure.
#ifndef SRC_PMEM_FLUSH_H_
#define SRC_PMEM_FLUSH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pmem {

// Which flush instruction the host supports (best one is selected at startup).
enum class FlushInstruction { kClwb, kClflushOpt, kClflush, kNoop };

FlushInstruction ActiveFlushInstruction();
const char* FlushInstructionName(FlushInstruction instruction);

// Write-back every cache line overlapping [addr, addr+size). Does not order
// subsequent stores; pair with Fence().
void Flush(const void* addr, size_t size);

// Store fence (sfence). Orders all preceding flushes/non-temporal stores.
void Fence();

// Flush + Fence, the common "persist this range now" idiom.
void FlushFence(const void* addr, size_t size);

// Store `value` to `*dst` and persist it: store, flush line, fence. The
// canonical primitive for publishing a commit marker.
void PersistStore64(uint64_t* dst, uint64_t value);

// Persistence traffic counters (relaxed; cheap enough to keep always-on).
// Tests use them to assert that code paths emit the expected flush/fence
// pattern; benches report them as derived metrics.
struct PersistStats {
  uint64_t flushed_lines = 0;
  uint64_t flush_calls = 0;
  uint64_t fences = 0;
};

PersistStats ReadPersistStats();
void ResetPersistStats();

// Observer of the persistence instruction stream. The crashsim trace recorder
// implements this to build epoch-delimited persist traces.
//
// Callback-ordering contract (crashsim depends on it; see DESIGN.md §10):
//   * Callbacks run on the persisting thread, after the flush/fence has taken
//     effect (and after the ShadowHeap update, so the observer sees the
//     post-flush durable image).
//   * Every cache line written back through this module is reported by exactly
//     one OnFlushRange before the OnFence that orders it — including lines
//     flushed through a FlushBatch, whose deduplicated runs are reported as
//     ordinary OnFlushRange calls at publication time. Batching coalesces
//     flushes; it never bypasses or reorders them past their closing fence.
//   * OnFence is invoked once per Fence(), after the sfence retires, so the
//     interval between two OnFence callbacks is exactly one persist epoch.
class PersistObserver {
 public:
  virtual ~PersistObserver() = default;
  virtual void OnFlushRange(const void* addr, size_t size) = 0;
  virtual void OnFence() = 0;
};

// Installs the process-wide observer (nullptr to clear). At most one observer
// may be active; the caller must keep it alive until cleared.
void SetPersistObserver(PersistObserver* observer);

// Accumulates to-be-persisted ranges and writes them back in one batch with
// cacheline deduplication — the building block of the transaction runtime's
// group-persistence protocol (DESIGN.md §10). A range Add()ed here is NOT
// durable (and not even write-back-scheduled) until FlushPending() runs, and
// not ordered until the caller fences; the intended idiom is
//
//   batch.Add(a, la); batch.Add(b, lb); ...   // stage
//   batch.FlushPending();                     // one write-back pass, deduped
//   pmem::Fence();                            // one ordering point
//
// Lines staged twice are flushed once (with their latest content, since Flush
// writes back whatever the line holds at flush time). Not thread-safe: each
// transaction/thread owns its batch. Flushes are issued through pmem::Flush,
// so counters, ShadowHeap, and the PersistObserver all see them normally.
class FlushBatch {
 public:
  // Stages every cache line overlapping [addr, addr+size). O(1): the range
  // is recorded whole (line-aligned), not expanded per line, so staging a
  // multi-megabyte fresh range costs one entry.
  void Add(const void* addr, size_t size);

  // Write-back pass: flushes each staged line exactly once — overlapping and
  // adjacent ranges are merged into maximal runs, one Flush() call per run —
  // then clears the batch. Does not fence.
  void FlushPending();

  // Moves every staged range out of `from` and appends it here, leaving
  // `from` empty. The cross-thread handoff primitive of epoch-based group
  // commit: a committing thread splices its batch into the advancer's
  // accumulation batch under the epoch lock, and the advancer later flushes
  // the union in one deduplicated pass. Neither batch is thread-safe on its
  // own — the caller serializes the handoff.
  void Splice(FlushBatch* from);

  void Clear() {
    ranges_.clear();
    staged_bytes_ = 0;
  }
  bool empty() const { return ranges_.empty(); }

  // Distinct staged lines (after dedup/merge). For tests/benches.
  size_t pending_lines();

  // Upper bound on staged bytes: the sum of line-aligned range sizes as
  // staged, without dedup (duplicate lines double-count). Cheap enough for
  // the epoch advancer's close-threshold accounting, where an overestimate
  // only closes an epoch a little early.
  size_t staged_bytes() const { return staged_bytes_; }

 private:
  void MergeRanges();
  // Line-aligned [start, end) ranges; sorted and overlap-merged lazily.
  std::vector<std::pair<uintptr_t, uintptr_t>> ranges_;
  size_t staged_bytes_ = 0;
};

namespace internal {
extern std::atomic<bool> g_shadow_active;  // Set by the ShadowHeap registry.
}  // namespace internal

}  // namespace pmem

#endif  // SRC_PMEM_FLUSH_H_
