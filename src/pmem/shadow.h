// ShadowHeap — the crash simulator for the §5.1 correctness checks.
//
// On real PM, a store becomes durable either when explicitly flushed or when
// the cache arbitrarily evicts its line. We model both:
//   * Each registered PM region keeps a DRAM shadow ("durable image").
//   * pmem::Flush() copies the flushed byte range live → shadow.
//   * SimulateCrash() overwrites the live mapping with the shadow, i.e. every
//     store that was never flushed is lost — the strictest failure model.
//   * With eviction enabled, a seeded random subset of the *dirty* (differing)
//     cache lines is retained instead of rolled back, modeling arbitrary
//     cache eviction. Recovery must succeed under every subset.
//
// Tests attach shadows around transaction runs, trigger a crash at an injected
// point, call SimulateCrash(), then run daemon recovery over the same mapping
// and assert application invariants.
#ifndef SRC_PMEM_SHADOW_H_
#define SRC_PMEM_SHADOW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pmem {

struct ShadowCrashOptions {
  // If true, each dirty (unflushed) cache line independently survives the
  // crash with probability `eviction_probability`.
  bool evict_random_lines = false;
  double eviction_probability = 0.5;
  uint64_t seed = 1;
};

struct ShadowCrashReport {
  uint64_t dirty_lines = 0;     // Lines that differed live vs. shadow at crash.
  uint64_t evicted_lines = 0;   // Dirty lines that survived via simulated eviction.
  uint64_t regions = 0;
};

class ShadowRegistry {
 public:
  static ShadowRegistry& Instance();

  // Begins shadowing [base, base+size). The shadow is initialized from the
  // current live contents (i.e. the region is assumed durable at attach time).
  void Attach(void* base, size_t size);

  // Stops shadowing the region starting at `base`. No-op if not attached.
  void Detach(void* base);

  // Drops all shadows and deactivates the simulator.
  void DetachAll();

  bool active() const;

  // Called from pmem::Flush() for every flushed range.
  void OnFlush(const void* addr, size_t size);

  // Replaces live contents of every shadowed region with the durable image,
  // optionally retaining randomly "evicted" dirty lines. The shadow is then
  // re-synced to the (new) live contents so recovery code may keep running
  // under the simulator.
  ShadowCrashReport SimulateCrash(const ShadowCrashOptions& options = {});

  // Copies live → shadow for every region (declares everything durable).
  // Useful to establish a clean baseline mid-test.
  void SyncAllToLive();

 private:
  struct Region {
    uint8_t* base = nullptr;
    size_t size = 0;
    std::unique_ptr<uint8_t[]> shadow;
  };

  ShadowRegistry() = default;

  mutable std::mutex mu_;
  std::vector<Region> regions_;
};

// RAII convenience: attaches on construction, detaches on destruction.
class ScopedShadow {
 public:
  ScopedShadow(void* base, size_t size) : base_(base) {
    ShadowRegistry::Instance().Attach(base, size);
  }
  ~ScopedShadow() { ShadowRegistry::Instance().Detach(base_); }

  ScopedShadow(const ScopedShadow&) = delete;
  ScopedShadow& operator=(const ScopedShadow&) = delete;

 private:
  void* base_;
};

}  // namespace pmem

#endif  // SRC_PMEM_SHADOW_H_
