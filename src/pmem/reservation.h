// The global puddle address space (paper §3.4).
//
// "We reserve 1 TiB of address space as the global puddle space at a fixed
// virtual address, disregarding Linux's ASLR for the address range."
//
// AddressReservation mmaps a PROT_NONE / MAP_NORESERVE region at a fixed base
// hint, hands out page-aligned sub-ranges, maps puddle files into them with
// MAP_FIXED, and returns ranges to PROT_NONE when puddles are unmapped. Any
// access to a reserved-but-unmapped range raises SIGSEGV, which the fault
// handler (src/libpuddles/fault_handler.h) turns into on-demand puddle
// mapping — the cascading relocation mechanism of §4.2.
#ifndef SRC_PMEM_RESERVATION_H_
#define SRC_PMEM_RESERVATION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/status.h"

namespace pmem {

inline constexpr uintptr_t kDefaultPuddleSpaceBase = 0x10000000000ULL;  // 1 TiB mark.
inline constexpr size_t kDefaultPuddleSpaceSize = 1ULL << 36;           // 64 GiB reserved.

class AddressReservation {
 public:
  AddressReservation() = default;
  ~AddressReservation();

  AddressReservation(const AddressReservation&) = delete;
  AddressReservation& operator=(const AddressReservation&) = delete;

  // Reserves [base_hint, base_hint+size) PROT_NONE. If the hint is taken
  // (e.g. two processes in one test binary), falls back to a kernel-chosen
  // address — pointers are relocatable anyway, that is the whole point.
  puddles::Status Reserve(uintptr_t base_hint = kDefaultPuddleSpaceBase,
                          size_t size = kDefaultPuddleSpaceSize);

  void Release();

  bool reserved() const { return base_ != 0; }
  uintptr_t base() const { return base_; }
  size_t size() const { return size_; }

  bool Contains(uintptr_t addr) const { return addr >= base_ && addr < base_ + size_; }
  bool Contains(const void* addr) const { return Contains(reinterpret_cast<uintptr_t>(addr)); }

  // Allocates a page-aligned sub-range of `size` bytes from the reservation
  // (first fit). Returns its start address. The range stays PROT_NONE until
  // MapFileAt.
  puddles::Result<uintptr_t> AllocateRange(size_t size);

  // Claims a specific sub-range (used when a puddle already has an assigned
  // address). Fails if any part is already claimed.
  puddles::Status ClaimRange(uintptr_t addr, size_t size);

  // True if [addr, addr+size) is entirely unclaimed and inside the
  // reservation.
  bool RangeFree(uintptr_t addr, size_t size) const;

  // Releases a claimed range back to the free pool (must exactly match a
  // prior AllocateRange/ClaimRange).
  puddles::Status FreeRange(uintptr_t addr);

  // Maps `fd` (whole file of `size` bytes) at `addr`, which must be a claimed
  // range of at least `size` bytes.
  puddles::Status MapFileAt(int fd, uintptr_t addr, size_t size, bool writable);

  // Returns [addr, addr+size) to PROT_NONE (the range stays claimed).
  puddles::Status UnmapToReserved(uintptr_t addr, size_t size);

  // Number of currently claimed ranges (diagnostics).
  size_t claimed_ranges() const;

 private:
  uintptr_t base_ = 0;
  size_t size_ = 0;

  mutable std::mutex mu_;
  // claimed ranges: start -> size.
  std::map<uintptr_t, size_t> claimed_;
};

}  // namespace pmem

#endif  // SRC_PMEM_RESERVATION_H_
