// File-backed persistent memory. Each puddle is one file (paper §4.3:
// "For each puddle, Puddled creates a file in the filesystem"); PmemFile owns
// the descriptor and mapping lifecycle.
//
// On DAX filesystems mmap gives direct media access; on regular filesystems
// (this repo's emulation) the page cache stands in for the PM media. The
// crash-consistency work is all expressed through pmem::Flush ordering, which
// the ShadowHeap simulator interprets — see DESIGN.md §1.
#ifndef SRC_PMEM_MAPPED_FILE_H_
#define SRC_PMEM_MAPPED_FILE_H_

#include <cstddef>
#include <string>

#include "src/common/status.h"

namespace pmem {

class PmemFile {
 public:
  PmemFile() = default;
  ~PmemFile();

  PmemFile(PmemFile&& other) noexcept;
  PmemFile& operator=(PmemFile&& other) noexcept;
  PmemFile(const PmemFile&) = delete;
  PmemFile& operator=(const PmemFile&) = delete;

  // Creates a new file of `size` bytes (fails if it exists) with mode 0600.
  static puddles::Result<PmemFile> Create(const std::string& path, size_t size);

  // Opens an existing file; size is taken from the file.
  static puddles::Result<PmemFile> Open(const std::string& path, bool writable = true);

  // Adopts an already-open descriptor (e.g. one received over SCM_RIGHTS from
  // puddled). Takes ownership of `fd`.
  static puddles::Result<PmemFile> FromFd(int fd, bool writable = true);

  // Maps the whole file MAP_SHARED. If `fixed_addr` is non-null the mapping is
  // placed exactly there with MAP_FIXED (the caller must own that range, e.g.
  // via AddressReservation). Returns the mapping address.
  puddles::Result<void*> Map(void* fixed_addr = nullptr);

  // Unmaps (if mapped). The file stays open.
  void Unmap();

  // msync the mapping — only needed when real file durability (not just crash
  // simulation) is wanted, e.g. before shipping an exported pool.
  puddles::Status Sync();

  bool mapped() const { return map_base_ != nullptr; }
  void* data() const { return map_base_; }
  size_t size() const { return size_; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }
  bool writable() const { return writable_; }

  // Releases and returns the descriptor without closing it (for fd passing).
  int ReleaseFd();

 private:
  int fd_ = -1;
  size_t size_ = 0;
  void* map_base_ = nullptr;
  bool writable_ = true;
  std::string path_;
};

}  // namespace pmem

#endif  // SRC_PMEM_MAPPED_FILE_H_
