#include "src/pmem/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace pmem {

PmemFile::~PmemFile() {
  Unmap();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

PmemFile::PmemFile(PmemFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      writable_(other.writable_),
      path_(std::move(other.path_)) {}

PmemFile& PmemFile::operator=(PmemFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    map_base_ = std::exchange(other.map_base_, nullptr);
    writable_ = other.writable_;
    path_ = std::move(other.path_);
  }
  return *this;
}

puddles::Result<PmemFile> PmemFile::Create(const std::string& path, size_t size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    return puddles::ErrnoError("create " + path, errno);
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    return puddles::ErrnoError("ftruncate " + path, saved);
  }
  PmemFile file;
  file.fd_ = fd;
  file.size_ = size;
  file.writable_ = true;
  file.path_ = path;
  return file;
}

puddles::Result<PmemFile> PmemFile::Open(const std::string& path, bool writable) {
  int fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    return puddles::ErrnoError("open " + path, errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return puddles::ErrnoError("fstat " + path, saved);
  }
  PmemFile file;
  file.fd_ = fd;
  file.size_ = static_cast<size_t>(st.st_size);
  file.writable_ = writable;
  file.path_ = path;
  return file;
}

puddles::Result<PmemFile> PmemFile::FromFd(int fd, bool writable) {
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return puddles::ErrnoError("fstat fd", errno);
  }
  PmemFile file;
  file.fd_ = fd;
  file.size_ = static_cast<size_t>(st.st_size);
  file.writable_ = writable;
  return file;
}

puddles::Result<void*> PmemFile::Map(void* fixed_addr) {
  if (fd_ < 0) {
    return puddles::FailedPreconditionError("PmemFile not open");
  }
  if (map_base_ != nullptr) {
    return puddles::FailedPreconditionError("PmemFile already mapped");
  }
  int prot = PROT_READ | (writable_ ? PROT_WRITE : 0);
  int flags = MAP_SHARED | (fixed_addr != nullptr ? MAP_FIXED : 0);
  void* base = ::mmap(fixed_addr, size_, prot, flags, fd_, 0);
  if (base == MAP_FAILED) {
    return puddles::ErrnoError("mmap " + path_, errno);
  }
  map_base_ = base;
  return base;
}

void PmemFile::Unmap() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, size_);
    map_base_ = nullptr;
  }
}

puddles::Status PmemFile::Sync() {
  if (map_base_ == nullptr) {
    return puddles::FailedPreconditionError("PmemFile not mapped");
  }
  if (::msync(map_base_, size_, MS_SYNC) != 0) {
    return puddles::ErrnoError("msync " + path_, errno);
  }
  return puddles::OkStatus();
}

int PmemFile::ReleaseFd() {
  Unmap();
  return std::exchange(fd_, -1);
}

}  // namespace pmem
