#include "src/pmem/global_space.h"

#include <cstdlib>

#include "src/common/log.h"

namespace pmem {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 0);
}

}  // namespace

uint64_t ConfiguredSpaceBase() {
  static const uint64_t base = EnvU64("PUDDLES_SPACE_BASE", kDefaultPuddleSpaceBase);
  return base;
}

uint64_t ConfiguredSpaceSize() {
  static const uint64_t size = EnvU64("PUDDLES_SPACE_SIZE", kDefaultPuddleSpaceSize);
  return size;
}

AddressReservation& GlobalPuddleSpace() {
  static AddressReservation* reservation = [] {
    auto* r = new AddressReservation();
    puddles::Status status = r->Reserve(ConfiguredSpaceBase(), ConfiguredSpaceSize());
    if (!status.ok()) {
      PUD_LOG_ERROR("failed to reserve global puddle space: %s", status.ToString().c_str());
    }
    return r;
  }();
  return *reservation;
}

}  // namespace pmem
