#include "src/pmem/flush.h"

#if defined(__x86_64__)
#include <cpuid.h>
#endif

#include <algorithm>

#include "src/common/align.h"
#include "src/pmem/shadow.h"
#include "src/stats/stats.h"

namespace pmem {
namespace {

std::atomic<uint64_t> g_flushed_lines{0};
std::atomic<uint64_t> g_flush_calls{0};
std::atomic<uint64_t> g_fences{0};
std::atomic<PersistObserver*> g_observer{nullptr};
std::atomic<int> g_observer_inflight{0};

// Invokes the observer under an in-flight count so SetPersistObserver(nullptr)
// can drain concurrent callers before the observer is destroyed. The
// increment and the re-load must be seq_cst to pair with the clearing
// thread's seq_cst null store: with weaker orders the classic store-buffering
// outcome lets the drain read inflight==0 while this thread still reads the
// old observer pointer.
template <typename Fn>
inline void NotifyObserver(Fn&& fn) {
  if (g_observer.load(std::memory_order_acquire) == nullptr) {
    return;
  }
  g_observer_inflight.fetch_add(1, std::memory_order_seq_cst);
  if (PersistObserver* observer = g_observer.load(std::memory_order_seq_cst)) {
    fn(observer);
  }
  g_observer_inflight.fetch_sub(1, std::memory_order_release);
}

#if defined(__x86_64__)

// clwb is encoded as 66 0F AE /6 — i.e. xsaveopt with a 66 prefix — and
// clflushopt as 66 0F AE /7 — clflush with a 66 prefix. Using the prefixed
// aliases avoids requiring -mclwb/-mclflushopt at compile time while still
// emitting the genuine instructions (the same trick PMDK uses).
inline void ClwbLine(const void* p) {
  asm volatile(".byte 0x66; xsaveopt %0"
               : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}

inline void ClflushOptLine(const void* p) {
  asm volatile(".byte 0x66; clflush %0"
               : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}

inline void ClflushLine(const void* p) {
  asm volatile("clflush %0" : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}

FlushInstruction DetectFlushInstruction() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    if (ebx & (1u << 24)) {
      return FlushInstruction::kClwb;
    }
    if (ebx & (1u << 23)) {
      return FlushInstruction::kClflushOpt;
    }
  }
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) && (edx & (1u << 19))) {
    return FlushInstruction::kClflush;
  }
  return FlushInstruction::kNoop;
}

#else

FlushInstruction DetectFlushInstruction() { return FlushInstruction::kNoop; }

#endif  // __x86_64__

FlushInstruction CachedFlushInstruction() {
  static const FlushInstruction instruction = DetectFlushInstruction();
  return instruction;
}

}  // namespace

namespace internal {
std::atomic<bool> g_shadow_active{false};
}  // namespace internal

FlushInstruction ActiveFlushInstruction() { return CachedFlushInstruction(); }

const char* FlushInstructionName(FlushInstruction instruction) {
  switch (instruction) {
    case FlushInstruction::kClwb:
      return "clwb";
    case FlushInstruction::kClflushOpt:
      return "clflushopt";
    case FlushInstruction::kClflush:
      return "clflush";
    case FlushInstruction::kNoop:
      return "noop";
  }
  return "?";
}

void Flush(const void* addr, size_t size) {
  if (size == 0) {
    return;
  }
  const uintptr_t start = puddles::AlignDown(reinterpret_cast<uintptr_t>(addr),
                                             puddles::kCacheLineSize);
  const uintptr_t end = reinterpret_cast<uintptr_t>(addr) + size;
  uint64_t lines = 0;
#if defined(__x86_64__)
  switch (CachedFlushInstruction()) {
    case FlushInstruction::kClwb:
      for (uintptr_t line = start; line < end; line += puddles::kCacheLineSize, ++lines) {
        ClwbLine(reinterpret_cast<const void*>(line));
      }
      break;
    case FlushInstruction::kClflushOpt:
      for (uintptr_t line = start; line < end; line += puddles::kCacheLineSize, ++lines) {
        ClflushOptLine(reinterpret_cast<const void*>(line));
      }
      break;
    case FlushInstruction::kClflush:
      for (uintptr_t line = start; line < end; line += puddles::kCacheLineSize, ++lines) {
        ClflushLine(reinterpret_cast<const void*>(line));
      }
      break;
    case FlushInstruction::kNoop:
      lines = (end - start + puddles::kCacheLineSize - 1) / puddles::kCacheLineSize;
      std::atomic_thread_fence(std::memory_order_release);
      break;
  }
#else
  lines = (end - start + puddles::kCacheLineSize - 1) / puddles::kCacheLineSize;
  std::atomic_thread_fence(std::memory_order_release);
#endif
  g_flushed_lines.fetch_add(lines, std::memory_order_relaxed);
  g_flush_calls.fetch_add(1, std::memory_order_relaxed);
  PUDDLES_COUNT(kFlushCalls);
  PUDDLES_COUNT_N(kFlushLinesPublished, lines);
  if (internal::g_shadow_active.load(std::memory_order_acquire)) {
    ShadowRegistry::Instance().OnFlush(addr, size);
  }
  NotifyObserver([&](PersistObserver* observer) { observer->OnFlushRange(addr, size); });
}

void Fence() {
#if defined(__x86_64__)
  asm volatile("sfence" ::: "memory");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  g_fences.fetch_add(1, std::memory_order_relaxed);
  PUDDLES_COUNT(kFences);
  NotifyObserver([](PersistObserver* observer) { observer->OnFence(); });
}

void SetPersistObserver(PersistObserver* observer) {
  g_observer.store(observer, std::memory_order_seq_cst);
  if (observer == nullptr) {
    // Drain in-flight callbacks so the caller may destroy the observer the
    // moment this returns, even with other threads mid-Flush/Fence.
    while (g_observer_inflight.load(std::memory_order_seq_cst) != 0) {
    }
  }
}

void FlushFence(const void* addr, size_t size) {
  Flush(addr, size);
  Fence();
}

void PersistStore64(uint64_t* dst, uint64_t value) {
  *dst = value;
  FlushFence(dst, sizeof(*dst));
}

void FlushBatch::Add(const void* addr, size_t size) {
  if (size == 0) {
    return;
  }
  const uintptr_t start = puddles::AlignDown(reinterpret_cast<uintptr_t>(addr),
                                             puddles::kCacheLineSize);
  const uintptr_t end = puddles::AlignUp(reinterpret_cast<uintptr_t>(addr) + size,
                                         puddles::kCacheLineSize);
  PUDDLES_COUNT_N(kFlushLinesStaged, (end - start) / puddles::kCacheLineSize);
  ranges_.push_back({start, end});
  staged_bytes_ += end - start;
}

void FlushBatch::Splice(FlushBatch* from) {
  if (from->ranges_.empty()) {
    return;
  }
  if (ranges_.empty()) {
    ranges_.swap(from->ranges_);
  } else {
    ranges_.insert(ranges_.end(), from->ranges_.begin(), from->ranges_.end());
    from->ranges_.clear();
  }
  staged_bytes_ += from->staged_bytes_;
  from->staged_bytes_ = 0;
}

// Sorts by start and merges overlapping/adjacent ranges into maximal runs,
// so each staged line is represented (and later flushed) exactly once.
void FlushBatch::MergeRanges() {
  std::sort(ranges_.begin(), ranges_.end());
  size_t out = 0;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (out > 0 && ranges_[i].first <= ranges_[out - 1].second) {
      ranges_[out - 1].second = std::max(ranges_[out - 1].second, ranges_[i].second);
    } else {
      ranges_[out++] = ranges_[i];
    }
  }
  ranges_.resize(out);
}

size_t FlushBatch::pending_lines() {
  MergeRanges();
  size_t lines = 0;
  for (const auto& [start, end] : ranges_) {
    lines += (end - start) / puddles::kCacheLineSize;
  }
  return lines;
}

void FlushBatch::FlushPending() {
  if (ranges_.empty()) {
    return;
  }
  PUDDLES_COUNT(kFlushBatchPublish);
  MergeRanges();
  for (const auto& [start, end] : ranges_) {
    Flush(reinterpret_cast<const void*>(start), end - start);
  }
  ranges_.clear();
  staged_bytes_ = 0;
}

PersistStats ReadPersistStats() {
  PersistStats stats;
  stats.flushed_lines = g_flushed_lines.load(std::memory_order_relaxed);
  stats.flush_calls = g_flush_calls.load(std::memory_order_relaxed);
  stats.fences = g_fences.load(std::memory_order_relaxed);
  return stats;
}

void ResetPersistStats() {
  g_flushed_lines.store(0, std::memory_order_relaxed);
  g_flush_calls.store(0, std::memory_order_relaxed);
  g_fences.store(0, std::memory_order_relaxed);
}

}  // namespace pmem
