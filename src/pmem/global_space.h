// Process-wide singleton reservation of the global puddle address space
// (§3.4). Both Puddled (for recovery/import mappings) and client runtimes
// (for application mappings) use this one reservation, so embedded-mode
// tests — daemon and application in one process — share a consistent view.
//
// Base and size can be overridden before first use with the environment
// variables PUDDLES_SPACE_BASE / PUDDLES_SPACE_SIZE (bytes, decimal or hex).
#ifndef SRC_PMEM_GLOBAL_SPACE_H_
#define SRC_PMEM_GLOBAL_SPACE_H_

#include "src/pmem/reservation.h"

namespace pmem {

AddressReservation& GlobalPuddleSpace();

// The configured (env or default) geometry — what base assignments are made
// against, independent of whether the local reservation got its hint.
uint64_t ConfiguredSpaceBase();
uint64_t ConfiguredSpaceSize();

}  // namespace pmem

#endif  // SRC_PMEM_GLOBAL_SPACE_H_
