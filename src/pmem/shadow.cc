#include "src/pmem/shadow.h"

#include <algorithm>
#include <cstring>

#include "src/common/align.h"
#include "src/common/rng.h"
#include "src/pmem/flush.h"

namespace pmem {

ShadowRegistry& ShadowRegistry::Instance() {
  static ShadowRegistry* registry = new ShadowRegistry();
  return *registry;
}

void ShadowRegistry::Attach(void* base, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  Region region;
  region.base = static_cast<uint8_t*>(base);
  region.size = size;
  region.shadow = std::make_unique<uint8_t[]>(size);
  std::memcpy(region.shadow.get(), base, size);
  regions_.push_back(std::move(region));
  internal::g_shadow_active.store(true, std::memory_order_release);
}

void ShadowRegistry::Detach(void* base) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].base == base) {
      regions_.erase(regions_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (regions_.empty()) {
    internal::g_shadow_active.store(false, std::memory_order_release);
  }
}

void ShadowRegistry::DetachAll() {
  std::lock_guard<std::mutex> lock(mu_);
  regions_.clear();
  internal::g_shadow_active.store(false, std::memory_order_release);
}

bool ShadowRegistry::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !regions_.empty();
}

void ShadowRegistry::OnFlush(const void* addr, size_t size) {
  const uintptr_t flush_start = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t flush_end = flush_start + size;
  std::lock_guard<std::mutex> lock(mu_);
  for (Region& region : regions_) {
    // Cache-line granularity is modeled relative to the region base, matching
    // SimulateCrash's line walk (mmap'd PM regions are line-aligned anyway;
    // test buffers need not be, and the two walks must agree — DESIGN.md §2).
    const puddles::LineSpan span = puddles::ClampToRegionLines(
        reinterpret_cast<uintptr_t>(region.base), region.size, flush_start, flush_end);
    if (span.length == 0) {
      continue;
    }
    std::memcpy(region.shadow.get() + span.offset, region.base + span.offset, span.length);
  }
}

ShadowCrashReport ShadowRegistry::SimulateCrash(const ShadowCrashOptions& options) {
  ShadowCrashReport report;
  puddles::Xoshiro256 rng(options.seed);
  std::lock_guard<std::mutex> lock(mu_);
  report.regions = regions_.size();
  for (Region& region : regions_) {
    for (size_t offset = 0; offset < region.size; offset += puddles::kCacheLineSize) {
      const size_t line_size = std::min(puddles::kCacheLineSize, region.size - offset);
      uint8_t* live = region.base + offset;
      uint8_t* durable = region.shadow.get() + offset;
      if (std::memcmp(live, durable, line_size) == 0) {
        continue;
      }
      ++report.dirty_lines;
      const bool evicted =
          options.evict_random_lines && rng.NextDouble() < options.eviction_probability;
      if (evicted) {
        // The cache happened to evict this line before power was lost: the
        // unflushed store is durable after all.
        std::memcpy(durable, live, line_size);
        ++report.evicted_lines;
      } else {
        // The store never reached PM: roll the live memory back to the
        // durable image.
        std::memcpy(live, durable, line_size);
      }
    }
  }
  return report;
}

void ShadowRegistry::SyncAllToLive() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Region& region : regions_) {
    std::memcpy(region.shadow.get(), region.base, region.size);
  }
}

}  // namespace pmem
