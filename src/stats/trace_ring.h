// Bounded per-thread trace-event ring with a chrome://tracing exporter.
//
// Each thread owns a fixed-size ring of completed spans (name, start, dur).
// PUDDLES_TRACE_SPAN("name") opens a scoped span: construction stamps the
// start, destruction pushes one event — two TSC reads and a few relaxed
// stores, no allocation, no locks, and the ring overwrites its oldest entry
// when full, so tracing can stay enabled in production without unbounded
// memory. Span names must be string literals (the ring stores the pointer).
//
// WriteChromeTrace() serializes every thread's ring (live and exited) into
// the Chrome Trace Event JSON format: load the file at chrome://tracing or
// https://ui.perfetto.dev. Export is designed for quiesced or best-effort
// use: event fields are relaxed atomics (data-race-free under TSan), but an
// export racing a writer may see a ring slot mid-overwrite.
//
// Like all of src/stats, this is volatile-only instrumentation and compiles
// to nothing under -DPUDDLES_STATS=0.
#ifndef SRC_STATS_TRACE_RING_H_
#define SRC_STATS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/stats/stats.h"

// Events retained per thread; override with -DPUDDLES_TRACE_RING_CAP=N.
#ifndef PUDDLES_TRACE_RING_CAP
#define PUDDLES_TRACE_RING_CAP 4096
#endif

namespace puddles {
namespace stats {

inline constexpr size_t kTraceRingCap = PUDDLES_TRACE_RING_CAP;

struct TraceEvent {
  std::atomic<const char*> name{nullptr};  // Static string literal.
  std::atomic<uint64_t> start_ticks{0};
  std::atomic<uint64_t> dur_ticks{0};
};

class TraceRing {
 public:
  void Push(const char* name, uint64_t start_ticks, uint64_t dur_ticks) {
    const uint64_t i = next_.load(std::memory_order_relaxed);
    TraceEvent& event = events_[i % kTraceRingCap];
    event.name.store(name, std::memory_order_relaxed);
    event.start_ticks.store(start_ticks, std::memory_order_relaxed);
    event.dur_ticks.store(dur_ticks, std::memory_order_relaxed);
    next_.store(i + 1, std::memory_order_release);
  }

  // Logically empties the ring (stale slots are never re-read: size() is
  // derived from the push cursor).
  void Reset() { next_.store(0, std::memory_order_release); }

  uint64_t pushed() const { return next_.load(std::memory_order_acquire); }
  size_t size() const {
    const uint64_t n = pushed();
    return n < kTraceRingCap ? static_cast<size_t>(n) : kTraceRingCap;
  }
  const TraceEvent& at(size_t i) const { return events_[i]; }

 private:
  TraceEvent events_[kTraceRingCap];
  std::atomic<uint64_t> next_{0};
};

namespace internal {
// This thread's ring, registering it on first use (one lock per thread).
TraceRing& Ring();
extern thread_local TraceRing* tls_ring;
}  // namespace internal

inline void PushSpan(const char* name, uint64_t start_ticks, uint64_t dur_ticks) {
  TraceRing* ring = internal::tls_ring;
  (ring != nullptr ? *ring : internal::Ring()).Push(name, start_ticks, dur_ticks);
}

// RAII span: stamps start on entry, pushes the completed event on exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name), start_(NowTicks()) {}
  ~ScopedSpan() { PushSpan(name_, start_, NowTicks() - start_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_;
};

// Serializes all rings as Chrome Trace Event JSON ("X" complete events,
// timestamps in microseconds). Returns the number of events written.
size_t WriteChromeTrace(std::string* out);

// Convenience: WriteChromeTrace to a file. Returns false on I/O failure.
bool WriteChromeTraceFile(const std::string& path);

// Test hook: drops all live ring contents and retired events.
void ResetTraceForTesting();

}  // namespace stats
}  // namespace puddles

#if PUDDLES_STATS
// Trace the rest of the enclosing scope as one named span.
#define PUDDLES_TRACE_SPAN(name)                      \
  ::puddles::stats::ScopedSpan PUDDLES_STATS_CONCAT( \
      puddles_stats_span_, __LINE__)(name)
#else
#define PUDDLES_TRACE_SPAN(name) ((void)0)
#endif

#endif  // SRC_STATS_TRACE_RING_H_
