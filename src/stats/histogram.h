// Fixed-bucket log-scale latency histogram (HdrHistogram-lite).
//
// Values land in log-linear buckets: 32 linear sub-buckets per power-of-two
// octave, so any recorded value is represented with ≤ 1/32 (~3.1%) relative
// error across the full uint64 range. The bucket array is fixed at compile
// time — recording is a branch, a bit-scan, and one relaxed counter bump; no
// allocation ever. Histograms are mergeable (bucket-wise addition), which is
// how per-thread instances aggregate into a process snapshot
// (src/stats/stats.h) and how bench shards combine.
//
// Units are whatever the caller records — the stats layer records raw TSC
// ticks and converts to nanoseconds at report time (stats::TicksToNanos), so
// the recording path never pays for clock scaling.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace puddles {
namespace stats {

// Log-linear bucket geometry, shared by the recording (atomic, per-thread)
// and snapshot (plain, mergeable) representations.
struct BucketScale {
  // 2^kSubBucketBits linear sub-buckets per octave → 1/32 relative error.
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  // Octave 0 holds values [0, 32) exactly; octaves 1..59 cover the rest of
  // the uint64 range at 32 sub-buckets each.
  static constexpr size_t kNumOctaves = 64 - kSubBucketBits;  // 59 + octave 0
  static constexpr size_t kNumBuckets = (kNumOctaves + 1) * kSubBuckets;

  static constexpr size_t BucketFor(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);  // Octave 0: exact.
    }
    // Octave o ≥ 1 covers [2^(o+4), 2^(o+5)); the top 5 bits below the
    // leading bit select the linear sub-bucket.
    const int msb = 63 - __builtin_clzll(value);
    const int octave = msb - kSubBucketBits + 1;
    const uint64_t sub = (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
    return static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
  }

  // Lowest value mapping to `bucket` (inverse of BucketFor).
  static constexpr uint64_t BucketLowerBound(size_t bucket) {
    if (bucket < kSubBuckets) {
      return bucket;
    }
    const uint64_t octave = bucket >> kSubBucketBits;
    const uint64_t sub = bucket & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (octave - 1);
  }

  // Midpoint of the bucket's value range — the representative reported for
  // percentiles (halves the worst-case quantization error).
  static constexpr uint64_t BucketMidpoint(size_t bucket) {
    if (bucket < kSubBuckets) {
      return bucket;
    }
    const uint64_t lo = BucketLowerBound(bucket);
    const uint64_t width = 1ULL << ((bucket >> kSubBucketBits) - 1);
    return lo + width / 2;
  }
};

// Plain (non-atomic) histogram: the snapshot/merge/report representation,
// also usable directly by single-threaded recorders (bench_runner).
class Histogram {
 public:
  void Record(uint64_t value) { RecordN(value, 1); }

  void RecordN(uint64_t value, uint64_t count) {
    buckets_[BucketScale::BucketFor(value)] += count;
    count_ += count;
    sum_ += value * count;
    if (count > 0 && value > max_) {
      max_ = value;
    }
  }

  void Merge(const Histogram& other) {
    for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  void Reset() { *this = Histogram(); }

  // Value at percentile p ∈ [0, 100]: the midpoint of the first bucket whose
  // cumulative count reaches ceil(p/100 · count). 0 when empty.
  uint64_t ValueAtPercentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
    if (target == 0) {
      target = 1;
    }
    if (target > count_) {
      target = count_;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        // Clamp to the recorded max: the top bucket's midpoint can exceed it.
        const uint64_t mid = BucketScale::BucketMidpoint(i);
        return mid < max_ ? mid : max_;
      }
    }
    return max_;
  }

  uint64_t p50() const { return ValueAtPercentile(50); }
  uint64_t p90() const { return ValueAtPercentile(90); }
  uint64_t p99() const { return ValueAtPercentile(99); }
  uint64_t p999() const { return ValueAtPercentile(99.9); }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  // Raw-merge interface used by AtomicHistogram::MergeInto: bucket counts and
  // the exact (sum, max) are transferred separately so cross-thread merges
  // stay exact instead of reconstructing sums from bucket midpoints.
  void AddBucket(size_t i, uint64_t n) {
    buckets_[i] += n;
    count_ += n;
  }
  void AddSumMax(uint64_t sum, uint64_t max) {
    sum_ += sum;
    if (max > max_) {
      max_ = max;
    }
  }

 private:
  uint64_t buckets_[BucketScale::kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Per-thread recording representation: atomics so a concurrent snapshot read
// is race-free (TSan-clean), but written only by the owning thread — bumps
// are relaxed load+store pairs, never lock-prefixed RMWs. Snapshot totals are
// exact once writers have quiesced; mid-flight reads are a consistent-enough
// monitoring view (counts may trail values by one in-progress record).
class AtomicHistogram {
 public:
  void Record(uint64_t value) {
    Bump(&buckets_[BucketScale::BucketFor(value)], 1);
    Bump(&sum_, value);
    if (value > max_.load(std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
  }

  void Reset() {
    for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // Adds this histogram's contents into `out` (bucket-wise, exact sums).
  void MergeInto(Histogram* out) const {
    for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
      const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        out->AddBucket(i, n);
      }
    }
    out->AddSumMax(sum_.load(std::memory_order_relaxed),
                   max_.load(std::memory_order_relaxed));
  }

 private:
  static void Bump(std::atomic<uint64_t>* slot, uint64_t n) {
    slot->store(slot->load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> buckets_[BucketScale::kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};  // count is derivable from the buckets.
  std::atomic<uint64_t> max_{0};
};

}  // namespace stats
}  // namespace puddles

#endif  // SRC_STATS_HISTOGRAM_H_
