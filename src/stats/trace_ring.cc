#include "src/stats/trace_ring.h"

#include <unistd.h>

#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

namespace puddles {
namespace stats {
namespace {

// Events preserved from exited threads (FIFO-capped).
constexpr size_t kMaxRetiredEvents = 16384;

struct RetiredEvent {
  const char* name;
  uint64_t start_ticks;
  uint64_t dur_ticks;
  uint32_t tid;
};

// Ring registry: separate from the counter registry so the two subsystems
// stay independently usable. Leaked on purpose (see stats.cc).
class TraceRegistry {
 public:
  static TraceRegistry& Instance() {
    static TraceRegistry* registry = new TraceRegistry();
    return *registry;
  }

  std::pair<TraceRing*, uint32_t> Register() {
    TraceRing* ring = new TraceRing();
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t tid = next_tid_++;
    rings_.push_back({ring, tid});
    return {ring, tid};
  }

  void Retire(TraceRing* ring, uint32_t tid) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < rings_.size(); ++i) {
      if (rings_[i].first == ring) {
        rings_[i] = rings_.back();
        rings_.pop_back();
        break;
      }
    }
    const size_t n = ring->size();
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& event = ring->at(i);
      retired_.push_back({event.name.load(std::memory_order_relaxed),
                          event.start_ticks.load(std::memory_order_relaxed),
                          event.dur_ticks.load(std::memory_order_relaxed), tid});
      if (retired_.size() > kMaxRetiredEvents) {
        retired_.pop_front();
      }
    }
    delete ring;
  }

  size_t Export(std::string* out) {
    std::lock_guard<std::mutex> lock(mu_);
    out->clear();
    out->append("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    size_t written = 0;
    char buf[256];
    const int pid = static_cast<int>(::getpid());
    auto emit = [&](const char* name, uint64_t start, uint64_t dur, uint32_t tid) {
      if (name == nullptr) {
        return;  // Slot never completed (export racing a writer).
      }
      const double ts_us = static_cast<double>(TicksToNanos(start)) / 1000.0;
      const double dur_us = static_cast<double>(TicksToNanos(dur)) / 1000.0;
      const int len = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"ph\":\"X\",\"cat\":\"puddles\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":%d,\"tid\":%u}",
          written == 0 ? "" : ",", name, ts_us, dur_us, pid, tid);
      out->append(buf, static_cast<size_t>(len));
      ++written;
    };
    for (const RetiredEvent& event : retired_) {
      emit(event.name, event.start_ticks, event.dur_ticks, event.tid);
    }
    for (const auto& [ring, tid] : rings_) {
      const size_t n = ring->size();
      for (size_t i = 0; i < n; ++i) {
        const TraceEvent& event = ring->at(i);
        emit(event.name.load(std::memory_order_relaxed),
             event.start_ticks.load(std::memory_order_relaxed),
             event.dur_ticks.load(std::memory_order_relaxed), tid);
      }
    }
    out->append("]}\n");
    return written;
  }

  void ResetForTesting() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.clear();
    for (auto& [ring, tid] : rings_) {
      (void)tid;
      ring->Reset();
    }
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<TraceRing*, uint32_t>> rings_;
  std::deque<RetiredEvent> retired_;
  uint32_t next_tid_ = 1;
};

struct RingOwner {
  TraceRing* ring = nullptr;
  uint32_t tid = 0;
  ~RingOwner() {
    if (ring != nullptr) {
      internal::tls_ring = nullptr;
      TraceRegistry::Instance().Retire(ring, tid);
    }
  }
};

thread_local RingOwner tls_ring_owner;

}  // namespace

namespace internal {

thread_local TraceRing* tls_ring = nullptr;

TraceRing& Ring() {
  if (tls_ring == nullptr) {
    auto [ring, tid] = TraceRegistry::Instance().Register();
    tls_ring_owner.ring = ring;
    tls_ring_owner.tid = tid;
    tls_ring = ring;
  }
  return *tls_ring;
}

}  // namespace internal

size_t WriteChromeTrace(std::string* out) { return TraceRegistry::Instance().Export(out); }

bool WriteChromeTraceFile(const std::string& path) {
  std::string json;
  WriteChromeTrace(&json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

void ResetTraceForTesting() { TraceRegistry::Instance().ResetForTesting(); }

}  // namespace stats
}  // namespace puddles
