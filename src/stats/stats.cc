#include "src/stats/stats.h"

#include <time.h>

#include <mutex>
#include <vector>

namespace puddles {
namespace stats {
namespace {

constexpr const char* kCounterNames[] = {
    "tx_begin",
    "tx_commit",
    "tx_abort",
    "undo_append",
    "undo_elided",
    "redo_append",
    "volatile_append",
    "log_bytes",
    "log_chain",
    "fences",
    "flush_calls",
    "flush_lines_published",
    "flush_lines_staged",
    "flush_batch_publish",
    "buddy_alloc",
    "buddy_free",
    "slab_alloc",
    "slab_free",
    "slab_carve",
    "slab_retire",
    "alloc_bytes",
    "free_bytes",
    "pool_grow",
    "epoch_advanced",
    "epoch_txs",
    "epoch_staged_bytes",
    "epoch_publish_cycles",
    "epoch_publish_waits",
    "epoch_sync_waits",
    "daemon_request",
    "daemon_conn_accepted",
    "daemon_conn_closed",
    "daemon_accept_retry",
    "arena_alloc",
    "arena_free",
    "arena_refill_slabs",
    "arena_flush_slabs",
    "arena_remote_free",
    "arena_orphan_adopt",
    "arena_gc_slabs",
    "arena_gc_reclaimed",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) == kNumCounters,
              "counter name table out of sync with the Counter enum");

constexpr const char* kHistNames[] = {
    "tx_commit_ns",
    "flush_publish_ns",
    "daemon_service_ns",
    "epoch_sync_wait_ns",
};
static_assert(sizeof(kHistNames) / sizeof(kHistNames[0]) == kNumHists,
              "histogram name table out of sync with the Hist enum");

uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Owns the live-slot list and the totals of exited threads. Leaked on
// purpose (never destroyed) so thread-exit retirement can never race static
// destruction order.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* registry = new Registry();
    return *registry;
  }

  ThreadSlot* Register() {
    ThreadSlot* slot = new ThreadSlot();
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(slot);
    return slot;
  }

  void Retire(ThreadSlot* slot) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == slot) {
        slots_[i] = slots_.back();
        slots_.pop_back();
        MergeSlot(*slot, &retired_);
        ++retired_.retired_threads;
        delete slot;
        return;
      }
    }
  }

  Snapshot Aggregate() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot out = retired_;
    for (ThreadSlot* slot : slots_) {
      MergeSlot(*slot, &out);
    }
    out.live_threads = slots_.size();
    return out;
  }

  void ResetForTesting() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = Snapshot();
    for (ThreadSlot* slot : slots_) {
      for (size_t i = 0; i < kNumCounters; ++i) {
        slot->counters[i].store(0, std::memory_order_relaxed);
      }
      for (size_t i = 0; i < kMaxDaemonOps; ++i) {
        slot->daemon_ops[i].store(0, std::memory_order_relaxed);
      }
      for (size_t i = 0; i < kNumHists; ++i) {
        slot->hists[i].Reset();
      }
    }
  }

 private:
  static void MergeSlot(const ThreadSlot& slot, Snapshot* out) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      out->counters[i] += slot.counters[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kMaxDaemonOps; ++i) {
      out->daemon_ops[i] += slot.daemon_ops[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kNumHists; ++i) {
      slot.hists[i].MergeInto(&out->hists[i]);
    }
  }

  std::mutex mu_;
  std::vector<ThreadSlot*> slots_;
  Snapshot retired_;
};

// Retires this thread's slot when the thread exits. A separate object from
// the fast-path pointer so the latter stays a trivial thread_local.
struct SlotOwner {
  ThreadSlot* slot = nullptr;
  ~SlotOwner() {
    if (slot != nullptr) {
      internal::tls_slot = nullptr;
      Registry::Instance().Retire(slot);
    }
  }
};

thread_local SlotOwner tls_owner;

}  // namespace

const char* CounterName(Counter counter) {
  const size_t i = static_cast<size_t>(counter);
  return i < kNumCounters ? kCounterNames[i] : "?";
}

const char* HistName(Hist hist) {
  const size_t i = static_cast<size_t>(hist);
  return i < kNumHists ? kHistNames[i] : "?";
}

namespace internal {

constinit thread_local ThreadSlot* tls_slot = nullptr;

ThreadSlot& Slot() {
  if (tls_slot == nullptr) {
    tls_owner.slot = Registry::Instance().Register();
    tls_slot = tls_owner.slot;
  }
  return *tls_slot;
}

}  // namespace internal

Snapshot Aggregate() { return Registry::Instance().Aggregate(); }

Snapshot Delta(const Snapshot& after, const Snapshot& before) {
  Snapshot out;
  for (size_t i = 0; i < kNumCounters; ++i) {
    out.counters[i] = after.counters[i] - before.counters[i];
  }
  for (size_t i = 0; i < kMaxDaemonOps; ++i) {
    out.daemon_ops[i] = after.daemon_ops[i] - before.daemon_ops[i];
  }
  for (size_t h = 0; h < kNumHists; ++h) {
    // Bucket-wise difference; meaningful for quiesced before/after pairs.
    for (size_t b = 0; b < BucketScale::kNumBuckets; ++b) {
      const uint64_t n = after.hists[h].bucket(b) - before.hists[h].bucket(b);
      if (n != 0) {
        out.hists[h].AddBucket(b, n);
      }
    }
    out.hists[h].AddSumMax(after.hists[h].sum() - before.hists[h].sum(),
                           after.hists[h].max());
  }
  out.live_threads = after.live_threads;
  out.retired_threads = after.retired_threads - before.retired_threads;
  return out;
}

void ResetForTesting() { Registry::Instance().ResetForTesting(); }

#if defined(__x86_64__)

uint64_t NowTicks() {
  uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

namespace {
// (ticks, ns) pair captured at static-init; the tick→ns ratio is re-derived
// from the elapsed pair at every conversion, so it self-corrects over time
// and needs no upfront calibration spin.
struct TickBase {
  uint64_t ticks = NowTicks();
  uint64_t ns = MonotonicNanos();
};
const TickBase g_tick_base;
}  // namespace

uint64_t TicksToNanos(uint64_t ticks) {
  uint64_t elapsed_ticks = NowTicks() - g_tick_base.ticks;
  // Guard the ratio against a call in the first instants after base capture.
  while (elapsed_ticks < 100000) {
    elapsed_ticks = NowTicks() - g_tick_base.ticks;
  }
  const uint64_t elapsed_ns = MonotonicNanos() - g_tick_base.ns;
  const double ratio = static_cast<double>(elapsed_ns) / static_cast<double>(elapsed_ticks);
  return static_cast<uint64_t>(static_cast<double>(ticks) * ratio);
}

#else  // !__x86_64__

uint64_t NowTicks() { return MonotonicNanos(); }
uint64_t TicksToNanos(uint64_t ticks) { return ticks; }

#endif  // __x86_64__

}  // namespace stats
}  // namespace puddles
