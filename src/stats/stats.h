// Runtime telemetry: per-thread lock-free counters, latency histograms, and
// scoped trace spans, aggregated on demand into a process-wide snapshot.
//
// Design rules (DESIGN.md §11):
//   * Stats writes are VOLATILE-ONLY. Nothing in this subsystem may flush,
//     fence, or touch persistent memory — instrumentation must be invisible
//     to the persistence ordering the rest of the tree is verified against
//     (enforced by tools/check_stats_path.sh).
//   * The fast path is wait-free and allocation-free: a TLS pointer load, a
//     branch, and a relaxed load+store bump on a cacheline owned by the
//     calling thread. Slots register once per thread (the only lock), live
//     until thread exit, and retire their totals into a global accumulator so
//     Aggregate() is exact over dead threads too.
//   * Everything compiles to nothing under -DPUDDLES_STATS=0: call sites use
//     the PUDDLES_* macros below, never the functions directly.
//
// Timers record raw TSC ticks (rdtsc — ~2 ns, vs ~20 ns for clock_gettime)
// and convert to nanoseconds at report time via TicksToNanos().
#ifndef SRC_STATS_STATS_H_
#define SRC_STATS_STATS_H_

#ifndef PUDDLES_STATS
#define PUDDLES_STATS 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/stats/histogram.h"

namespace puddles {
namespace stats {

// ---- Counter catalog ----
// One entry per always-on volatile counter. CounterName() must stay in sync
// (stats.cc has a static_assert on the name table length).
enum class Counter : uint32_t {
  // Transactions (src/tx).
  kTxBegin = 0,       // Outermost transactions begun.
  kTxCommit,          // Outermost transactions committed.
  kTxAbort,           // Outermost transactions aborted/rolled back.
  kUndoAppend,        // Undo log entries appended.
  kUndoElided,        // Undo captures skipped by coverage elision.
  kRedoAppend,        // Redo log entries appended.
  kVolatileAppend,    // Volatile (DRAM) undo entries appended.
  kLogBytes,          // Log bytes staged (entry header + payload, aligned).
  kLogChain,          // Continuation log puddles chained (Fig. 5 growth).
  // Persistence primitives (src/pmem).
  kFences,            // sfence ordering points issued.
  kFlushCalls,        // pmem::Flush invocations (post-dedup runs).
  kFlushLinesPublished,  // Cache lines actually written back.
  kFlushLinesStaged,  // Cache lines staged into FlushBatches (pre-dedup).
  kFlushBatchPublish, // FlushBatch::FlushPending passes that flushed work.
  // Allocators (src/alloc).
  kBuddyAlloc,        // Buddy blocks allocated.
  kBuddyFree,         // Buddy blocks freed.
  kSlabAlloc,         // Slab slots allocated.
  kSlabFree,          // Slab slots freed.
  kSlabCarve,         // Slab refills: 4 KiB blocks carved from the buddy.
  kSlabRetire,        // Emptied slabs returned to the buddy.
  kAllocBytes,        // Payload bytes handed out by ObjectHeap::Allocate.
  kFreeBytes,         // Payload bytes released by ObjectHeap::Free.
  // Pool / runtime (src/libpuddles).
  kPoolGrow,          // Data puddles added to pools.
  // Epoch-based group commit (src/epoch; docs/epoch.md).
  kEpochAdvanced,        // Epochs closed and persistently retired.
  kEpochTxs,             // Transactions that joined an epoch (txs/epoch = this / advanced).
  kEpochStagedBytes,     // Deferred bytes drained at epoch close (pre-dedup).
  kEpochPublishCycles,   // Advancer flush+fence cycles serving delegated publications.
  kEpochPublishWaits,    // Blocking delegated publications (threads that waited).
  kEpochSyncWaits,       // Explicit Sync()/retirement waits (incl. JoinTx rearm waits).
  // Daemon (src/daemon) — totals; the per-opcode breakdown is separate.
  kDaemonRequest,     // Requests dispatched (socket protocol path).
  kDaemonConnAccepted,  // Client connections admitted by the socket server.
  kDaemonConnClosed,    // Client connections torn down (any reason).
  kDaemonAcceptRetry,   // Transient accept failures survived (EMFILE etc.).
  // Per-thread slab arenas (src/alloc/arena; docs/alloc.md).
  kArenaAlloc,          // Slots handed out by the lock-free arena fast path.
  kArenaFree,           // Slots returned to a local arena free list.
  kArenaRefillSlabs,    // Slabs acquired from the shared heap by refills.
  kArenaFlushSlabs,     // Slabs flushed back to the shared heap (spill/flush).
  kArenaRemoteFree,     // Cross-thread frees absorbed by the owning arena.
  kArenaOrphanAdopt,    // Dead threads' arenas adopted by a live thread.
  kArenaGcSlabs,        // Arena slabs scanned by post-crash GC recovery.
  kArenaGcReclaimed,    // Leaked in-flight slots reclaimed by GC.
  kNumCounters,       // Sentinel; keep last.
};

inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kNumCounters);

// Stable short name for dashboards, the STATS wire payload, and puddlestat.
const char* CounterName(Counter counter);

// ---- Histogram catalog ----
enum class Hist : uint32_t {
  kTxCommitTicks = 0,   // Pool::Run / Transaction commit latency.
  kFlushPublishTicks,   // FlushBatch publication (flush pass + fence).
  kDaemonServiceTicks,  // Daemon request service time (DispatchRequest).
  kEpochSyncWaitTicks,  // Time blocked waiting on the epoch advancer.
  kNumHists,            // Sentinel; keep last.
};

inline constexpr size_t kNumHists = static_cast<size_t>(Hist::kNumHists);

const char* HistName(Hist hist);

// Daemon per-opcode request counters: indexed by the raw wire opcode,
// clamped into the overflow slot when out of range (forward compatibility
// with unknown ops).
inline constexpr size_t kMaxDaemonOps = 32;

// ---- Process-wide snapshot ----
struct Snapshot {
  uint64_t counters[kNumCounters] = {};
  uint64_t daemon_ops[kMaxDaemonOps] = {};
  Histogram hists[kNumHists];
  uint64_t live_threads = 0;     // Slots still owned by running threads.
  uint64_t retired_threads = 0;  // Threads whose totals were folded in.

  uint64_t counter(Counter c) const { return counters[static_cast<size_t>(c)]; }
  const Histogram& hist(Hist h) const { return hists[static_cast<size_t>(h)]; }
};

// Sums every live per-thread slot plus the retired accumulator. Exact once
// writer threads have quiesced (joined); during concurrent updates it is a
// monotonic, slightly-trailing monitoring view.
Snapshot Aggregate();

// Subtracts counters/ops bucket-wise (for before/after deltas in benches and
// tests). Histograms are subtracted bucket-wise too; callers should only
// diff quiesced snapshots.
Snapshot Delta(const Snapshot& after, const Snapshot& before);

// Test hook: folds every live slot and the retired accumulator to zero.
// Not safe to run concurrently with writers mid-bump; tests quiesce first.
void ResetForTesting();

// ---- Clocks ----
// Raw timestamp in TSC ticks (nanoseconds on non-x86 fallbacks).
uint64_t NowTicks();
// Converts a tick delta to nanoseconds using a ratio calibrated against
// CLOCK_MONOTONIC since process start (self-correcting as uptime grows).
uint64_t TicksToNanos(uint64_t ticks);

// ---- Fast-path implementation ----
// Cacheline-padded per-thread slot. Writers: owning thread only, relaxed
// load+store (no lock-prefixed RMW). Readers: Aggregate(), relaxed loads.
struct alignas(64) ThreadSlot {
  std::atomic<uint64_t> counters[kNumCounters] = {};
  std::atomic<uint64_t> daemon_ops[kMaxDaemonOps] = {};
  AtomicHistogram hists[kNumHists];

  void Bump(Counter c, uint64_t n) {
    std::atomic<uint64_t>& slot = counters[static_cast<size_t>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  void BumpDaemonOp(uint32_t op) {
    const size_t i = op < kMaxDaemonOps ? op : kMaxDaemonOps - 1;
    daemon_ops[i].store(daemon_ops[i].load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  }
  void Record(Hist h, uint64_t ticks) { hists[static_cast<size_t>(h)].Record(ticks); }
};

namespace internal {
// Registers (first call on a thread) and returns this thread's slot. The
// slow path takes the registry lock exactly once per thread lifetime.
ThreadSlot& Slot();
extern constinit thread_local ThreadSlot* tls_slot;
}  // namespace internal

inline ThreadSlot& LocalSlot() {
  ThreadSlot* slot = internal::tls_slot;
  return slot != nullptr ? *slot : internal::Slot();
}

inline void Add(Counter c, uint64_t n) { LocalSlot().Bump(c, n); }
inline void AddDaemonOp(uint32_t op) { LocalSlot().BumpDaemonOp(op); }
inline void Record(Hist h, uint64_t ticks) { LocalSlot().Record(h, ticks); }

// RAII tick timer recording into a histogram on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Hist hist) : hist_(hist), start_(NowTicks()) {}
  ~ScopedTimer() { Record(hist_, NowTicks() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Hist hist_;
  uint64_t start_;
};

}  // namespace stats
}  // namespace puddles

// ---- Instrumentation macros ----
// The only sanctioned call-site surface: under -DPUDDLES_STATS=0 every macro
// expands to nothing and the instrumented binaries carry zero telemetry code.
#if PUDDLES_STATS

#define PUDDLES_STATS_CONCAT2(a, b) a##b
#define PUDDLES_STATS_CONCAT(a, b) PUDDLES_STATS_CONCAT2(a, b)

// Bump a counter by 1 / by n.
#define PUDDLES_COUNT(counter) ::puddles::stats::Add(::puddles::stats::Counter::counter, 1)
#define PUDDLES_COUNT_N(counter, n) \
  ::puddles::stats::Add(::puddles::stats::Counter::counter, (n))
// Per-opcode daemon request accounting.
#define PUDDLES_COUNT_DAEMON_OP(op) ::puddles::stats::AddDaemonOp((op))
// Record a pre-measured tick delta.
#define PUDDLES_RECORD_TICKS(hist, ticks) \
  ::puddles::stats::Record(::puddles::stats::Hist::hist, (ticks))
// Time the rest of the enclosing scope into a histogram.
#define PUDDLES_SCOPED_TIMER(hist)                     \
  ::puddles::stats::ScopedTimer PUDDLES_STATS_CONCAT( \
      puddles_stats_timer_, __LINE__)(::puddles::stats::Hist::hist)

#else  // !PUDDLES_STATS

#define PUDDLES_COUNT(counter) ((void)0)
#define PUDDLES_COUNT_N(counter, n) ((void)0)
#define PUDDLES_COUNT_DAEMON_OP(op) ((void)0)
#define PUDDLES_RECORD_TICKS(hist, ticks) ((void)0)
#define PUDDLES_SCOPED_TIMER(hist) ((void)0)

#endif  // PUDDLES_STATS

#endif  // SRC_STATS_STATS_H_
