#include "src/alloc/object_heap.h"

#include <cstring>

#include "src/common/align.h"
#include "src/stats/stats.h"

namespace puddles {

size_t ObjectHeap::MetaSize(size_t heap_size) {
  return sizeof(Meta) + BuddyAllocator::MetaSize(heap_size);
}

puddles::Status ObjectHeap::Format(void* meta, void* heap, size_t heap_size) {
  auto* m = static_cast<Meta*>(meta);
  m->magic = kMetaMagic;
  m->heap_size = heap_size;
  SlabAllocator::FormatDirectory(&m->slab_dir);
  FormatArenaDirectory(&m->arena_dir);
  return BuddyAllocator::Format(m + 1, heap, heap_size);
}

puddles::Result<ObjectHeap> ObjectHeap::Attach(void* meta, void* heap, size_t heap_size,
                                               LogSink sink) {
  auto* m = static_cast<Meta*>(meta);
  if (m->magic != kMetaMagic) {
    return DataLossError("object heap metadata magic mismatch");
  }
  if (m->heap_size != heap_size) {
    return DataLossError("object heap size mismatch");
  }
  ASSIGN_OR_RETURN(BuddyAllocator buddy, BuddyAllocator::Attach(m + 1, heap, heap_size, sink));
  return ObjectHeap(m, std::move(buddy), sink);
}

puddles::Result<void*> ObjectHeap::Allocate(size_t payload_size, TypeId type_id) {
  if (payload_size == 0) {
    return InvalidArgumentError("zero-size allocation");
  }
  const size_t total = payload_size + sizeof(ObjectHeader);
  int64_t offset;
  if (total <= kMaxSlabSlot) {
    SlabAllocator slab = Slab();
    ASSIGN_OR_RETURN(offset, slab.Allocate(total));
  } else {
    ASSIGN_OR_RETURN(offset, buddy_.Allocate(total));
  }
  auto* header = reinterpret_cast<ObjectHeader*>(static_cast<uint8_t*>(buddy_.heap()) + offset);
  // The slot/block is fresh to this transaction: a rollback frees it via the
  // allocator-metadata entries and the bytes become unreachable, and commit
  // stage 1 persists the new contents. Noting the fresh range FIRST makes
  // the header declaration below a free elision for the transaction sink —
  // while sinks without a fresh channel (the baselines persist eagerly and
  // flush their logged ranges at their own commit) still capture and persist
  // the header through the ordinary WillWrite path.
  sink_.NoteFresh(header, total);
  sink_.WillWrite(header, sizeof(ObjectHeader));
  sink_.Publish();
  header->magic = kObjectMagic;
  header->size = static_cast<uint32_t>(payload_size);
  header->type_id = type_id;
  PUDDLES_COUNT_N(kAllocBytes, total);
  return static_cast<void*>(header + 1);
}

const ObjectHeader* ObjectHeap::HeaderOf(const void* payload) const {
  if (!InHeap(payload)) {
    return nullptr;
  }
  const auto* header = static_cast<const ObjectHeader*>(payload) - 1;
  if (!InHeap(header) || header->magic != kObjectMagic) {
    return nullptr;
  }
  return header;
}

bool ObjectHeap::IsLiveObject(const void* payload) const {
  const ObjectHeader* header = HeaderOf(payload);
  if (header == nullptr) {
    return false;
  }
  const int64_t header_off = OffsetOf(header);
  if (buddy_.IsAllocatedStart(header_off)) {
    return !Slab().IsSlabBlock(header_off);
  }
  // Must be a slot of a live slab.
  const int64_t slab_off =
      static_cast<int64_t>(AlignDown(static_cast<uint64_t>(header_off), kSlabBlockSize));
  return Slab().IsSlabBlock(slab_off);
}

uint16_t ObjectHeap::ArenaTagOf(const void* payload) const {
  const auto* header = static_cast<const ObjectHeader*>(payload) - 1;
  if (!InHeap(header)) {
    return 0;
  }
  const int64_t header_off = OffsetOf(header);
  if (buddy_.IsAllocatedStart(header_off)) {
    return 0;  // Buddy-backed object (slab slots never start a block).
  }
  const int64_t slab_off =
      static_cast<int64_t>(AlignDown(static_cast<uint64_t>(header_off), kSlabBlockSize));
  if (!Slab().IsSlabBlock(slab_off)) {
    return 0;
  }
  return reinterpret_cast<const SlabHeader*>(static_cast<uint8_t*>(buddy_.heap()) +
                                             slab_off)
      ->arena_slot;
}

puddles::Status ObjectHeap::Free(void* payload) {
  auto* header = static_cast<ObjectHeader*>(payload) - 1;
  if (!InHeap(header) || header->magic != kObjectMagic) {
    return FailedPreconditionError("free: not a live object");
  }
  if (ArenaTagOf(payload) != 0) {
    // Checked before the magic-clear group: the arena slab's bitmap is stale,
    // so a logged free here would corrupt it. The pool routes these through
    // the owning thread's volatile free list instead.
    return FailedPreconditionError("free: object belongs to a per-thread arena");
  }
  const int64_t offset = OffsetOf(header);
  // Own declare/publish/store group: the magic must be cleared before the
  // block returns to the allocator (a buddy free overwrites the header area
  // with its free-list node), so it cannot ride the allocator's group.
  sink_.WillWrite(&header->magic, sizeof(header->magic));
  sink_.Publish();
  PUDDLES_COUNT_N(kFreeBytes, sizeof(ObjectHeader) + header->size);
  header->magic = 0;
  if (buddy_.IsAllocatedStart(offset)) {
    return buddy_.Free(offset);
  }
  return Slab().Free(offset);
}

void ObjectHeap::ForEachObject(
    const std::function<void(void*, const ObjectHeader&, size_t)>& fn) const {
  auto* heap = static_cast<uint8_t*>(buddy_.heap());
  SlabAllocator slab = Slab();
  buddy_.ForEachAllocated([&](int64_t offset, size_t size) {
    if (slab.IsSlabBlock(offset)) {
      slab.ForEachSlot(offset, [&](int64_t slot_offset, size_t slot_size) {
        auto* header = reinterpret_cast<ObjectHeader*>(heap + slot_offset);
        if (header->magic == kObjectMagic) {
          fn(header + 1, *header, slot_size - sizeof(ObjectHeader));
        }
      });
      return;
    }
    auto* header = reinterpret_cast<ObjectHeader*>(heap + offset);
    if (header->magic == kObjectMagic) {
      fn(header + 1, *header, size - sizeof(ObjectHeader));
    }
  });
}

puddles::Status ObjectHeap::Validate() const {
  RETURN_IF_ERROR(buddy_.Validate());
  RETURN_IF_ERROR(Slab().Validate());
  // Every discovered object header must be well-formed and sized within its
  // containing block.
  puddles::Status status = OkStatus();
  ForEachObject([&](void* payload, const ObjectHeader& header, size_t capacity) {
    if (!status.ok()) {
      return;
    }
    if (header.size == 0) {
      status = DataLossError("object with zero size");
    }
    if (header.size > capacity) {
      status = DataLossError("object size exceeds its slot/block capacity");
    }
    if (!InHeap(static_cast<uint8_t*>(payload) + header.size - 1)) {
      status = DataLossError("object extends past heap end");
    }
  });
  return status;
}

}  // namespace puddles
