// Per-thread slab arenas: lock-free small-object allocation with post-crash
// GC recovery (docs/alloc.md; ROADMAP item 3).
//
// The global slab allocator undo-logs every metadata word and serializes all
// threads behind the pool's allocation mutex. Arenas break both costs on the
// hot path: each thread owns a set of slab pages whose occupancy lives in
// VOLATILE shadow state (a DRAM bitmap per slab plus per-class free lists),
// so arena malloc/free touch no lock, append no undo entry, and issue no
// persistence call. Only the slow paths — batched refill from the shared
// heap, spill/flush-back, cross-thread free handoff — take locks and run
// under the allocator group protocol, fully logged.
//
// Persistence contract: while a slab is arena-owned (SlabHeader::arena_slot
// != 0) its persistent bitmap/used are STALE. Crash-consistency comes from a
// persistent per-thread arena directory (NVMMgr-style, one per puddle): every
// arena-owned slab is chained from a directory entry via SlabHeader::
// arena_next, so recovery can find every arena in O(threads) and reconstruct
// true occupancy by walking roots through the pointer maps (Pool::
// RecoverArenas) — frees of arena-owned objects therefore need no logging at
// all.
//
// This header is allocator-layer only: volatile bookkeeping plus the
// persistent directory layout. Orchestration (refill transactions, spill,
// flush-back, GC) lives in Pool, which owns the Runtime/Transaction access.
#ifndef SRC_ALLOC_ARENA_H_
#define SRC_ALLOC_ARENA_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/alloc/slab.h"
#include "src/common/status.h"
#include "src/common/uuid.h"

namespace puddles {

// ---- Persistent arena directory (lives in ObjectHeap::Meta) ----

// Directory slots per puddle. Arena tags are slot + 1, so they must fit the
// 16-bit SlabHeader::arena_slot with 0 reserved for "global".
inline constexpr size_t kMaxArenaSlots = 64;

struct ArenaDirEntry {
  uint64_t active;     // 0 = free slot; 1 = owned by a (possibly dead) arena.
  int64_t slab_head;   // Heap offset of the first owned slab; -1 when none.
};

struct ArenaDirectory {
  static constexpr uint64_t kMagic = 0x5044415245313644ULL;  // "PDARE16D"

  uint64_t magic;
  uint64_t reserved;
  ArenaDirEntry entries[kMaxArenaSlots];
};
static_assert(sizeof(ArenaDirectory) == 16 + kMaxArenaSlots * sizeof(ArenaDirEntry),
              "arena directory layout is persistent");

void FormatArenaDirectory(ArenaDirectory* dir);

// ---- Volatile per-thread state ----

struct ArenaOptions {
  // Slabs acquired per refill (adopt-partial first, then carve fresh).
  int refill_slabs = 4;
  // Free slots held across a thread's arenas before the next transactional
  // slow path spills whole-empty slabs back to the shared heap.
  size_t flush_watermark = 512;
};

// Volatile record of one arena-owned slab. Stable address (deque storage).
struct ArenaSlab {
  int64_t offset = -1;       // Heap offset of the slab block.
  uint64_t shadow[2] = {};   // TRUE occupancy; the persistent bitmap is stale.
  uint16_t used = 0;
  uint16_t num_slots = 0;
  uint8_t class_index = 0;
  // Dropped from the arena: either its acquiring transaction aborted (the
  // persistent side rolled back) or it was spilled/flushed to the global
  // heap. Free-list entries pointing here are skipped and discarded lazily.
  bool retired = false;
};

// One thread's slab holdings within one puddle, pinned to one directory slot.
struct PuddleArena {
  Uuid uuid;
  uint8_t* heap_base = nullptr;
  size_t heap_size = 0;  // Bounds the same-thread address probe.
  int dir_slot = -1;  // 0-based; the persistent tag is dir_slot + 1.
  // Generation of this directory claim (ArenaManager::RegisterClaim). A
  // (uuid, tag) pair is recycled every time the slot is released and
  // re-claimed; queued remote frees carry the generation they were published
  // under so a record that outlives its claim is rejected instead of being
  // applied to whatever slab the recycled tag owns now.
  uint64_t claim_gen = 0;
  // Volatile mirror of the directory entry's chain head.
  int64_t chain_head = -1;
  bool dead = false;  // Directory claim rolled back or released; skip.

  std::deque<ArenaSlab> slabs;  // Stable ArenaSlab addresses.

  struct FreeSlot {
    ArenaSlab* slab;
    int slot;
  };
  std::array<std::vector<FreeSlot>, kNumSlabClasses> free_lists;

  uint16_t tag() const { return static_cast<uint16_t>(dir_slot + 1); }
  ArenaSlab* FindSlab(int64_t slab_offset);
};

class ArenaManager;

// All of one thread's arena state for one pool. Owned via shared_ptr: TLS
// holds it while the thread lives, then hands it to the manager's orphan
// list on thread exit so another thread can adopt and flush it.
class ThreadArena {
 public:
  explicit ThreadArena(const ArenaOptions& options) : options_(options) {}
  ThreadArena(const ThreadArena&) = delete;
  ThreadArena& operator=(const ThreadArena&) = delete;

  struct AllocResult {
    PuddleArena* pa = nullptr;
    ArenaSlab* slab = nullptr;
    int slot = -1;
    int64_t slot_offset = -1;  // Heap offset of the slot start.
    void* addr = nullptr;      // slot start (the ObjectHeader position).
  };

  // FAST PATH (tools/check_alloc_discipline.sh): pops a free slot of
  // `class_index` from any of this thread's arenas. No lock, no persistence
  // call, no undo append. Returns false when every local free list is empty
  // (caller refills under the pool's allocation lock and retries).
  bool TryAllocate(int class_index, AllocResult* out);

  // FAST PATH: returns a slot to its arena's free list. Clears the slot's
  // object magic with a plain store (the slot is dead; the cleared word
  // rides the next flush-back's logged occupancy write), clears the shadow
  // bit, and raises the spill hint past the watermark. No lock, no
  // persistence call, no undo append.
  void ReleaseSlot(PuddleArena* pa, ArenaSlab* slab, int slot);

  // FAST PATH: true when `header_addr` resolves to a live slot in one of
  // this thread's own non-retired slabs. Lock-free by ownership: only the
  // owning thread mutates its arenas while it is alive (spill, flush, and
  // adoption all run on the owner; orphan handoff happens only after exit).
  bool OwnsLocally(const void* header_addr) const;

  // FAST PATH: OwnsLocally + the release itself — returns the slot to the
  // local free list (or parks it epoch-pending when `epoch` != 0). Returns
  // false when the address is not locally owned; the caller falls back to
  // the locked cross-thread/global path.
  bool TryLocalFree(const void* header_addr, uint64_t epoch);

  // ---- Per-transaction tracking ----
  // Hot-path effects are volatile, so transaction rollback cannot restore
  // them; the pool registers commit/abort hooks that call back here. Returns
  // true on the first use under `tx` (an opaque identity) — the caller must
  // then register its hooks.
  bool NoteTxUse(void* tx);

  // Records a TryAllocate pop so OnTxAborted can restore it.
  void RecordPop(PuddleArena* pa, ArenaSlab* slab, int slot);
  // Records a directory slot claimed (active 0→1, logged) by the current
  // transaction; abort marks the PuddleArena dead to mirror the rollback.
  void RecordDirClaim(PuddleArena* pa);
  // Records a slab acquired by refill under the current transaction;
  // `prev_chain_head` is the chain head before the acquisition.
  void RecordSlabAcquired(PuddleArena* pa, ArenaSlab* slab, int64_t prev_chain_head);
  // Records a slab spilled back to the global heap under the current
  // transaction (already marked retired; abort resurrects it and restores
  // the chain head captured before the unlink).
  void RecordSpill(PuddleArena* pa, ArenaSlab* slab, int64_t prev_chain_head);

  void OnTxCommitted();
  void OnTxAborted();

  // ---- Epoch-gated reuse ----
  // A slot freed under epoch durability may only re-enter a free list once
  // its epoch has persistently retired: reusing it earlier would let the
  // unlogged new contents corrupt the resurrected object if the crash rolls
  // the freeing epoch back. `epoch` == 0 means immediately reusable.
  void AddPendingFree(PuddleArena* pa, ArenaSlab* slab, int slot, uint64_t epoch);
  // Releases every pending free whose epoch <= `retired_epoch`.
  void DrainPendingFrees(uint64_t retired_epoch);
  bool HasPendingFrees() const { return !pending_.empty(); }

  // Accepts a free published by another thread for a slot this arena owns.
  // Returns false when no live PuddleArena matches (uuid, tag, gen) — the
  // slab has since gone global, or the claim was recycled; the caller falls
  // back to a logged global free (which revalidates under the lock). When
  // the claim matches, the slot offset is validated against the current slab
  // (bounds + slot alignment) before any shadow state is touched; a record
  // that fails validation under its own claim is provably stale (its slab
  // was emptied and re-carved within the claim, which requires the free to
  // have already been applied) and is consumed as an inert duplicate.
  bool AcceptRemoteFree(const Uuid& uuid, uint16_t tag, uint64_t gen,
                        int64_t slot_offset, uint64_t epoch);

  // ---- Arena inventory (slow paths; caller holds the pool's alloc lock) ----
  PuddleArena* FindPuddleArena(const Uuid& uuid);
  PuddleArena* AddPuddleArena(const Uuid& uuid, uint8_t* heap_base, size_t heap_size,
                              int dir_slot);
  std::vector<PuddleArena*> LivePuddleArenas();
  // Registers a freshly acquired slab: volatile record, free-list entries for
  // every clear bit of `bitmap` (all clear for a carved slab), and the
  // per-transaction acquire record. Counts kArenaRefillSlabs.
  ArenaSlab* AddSlab(PuddleArena* pa, int64_t offset, int class_index,
                     uint16_t num_slots, const uint64_t bitmap[2], uint16_t used,
                     int64_t prev_chain_head);
  // True when a live, non-retired free slot of `class_index` exists — lets
  // refill skip acquisition when housekeeping alone replenished the lists.
  bool HasFreeSlot(int class_index) const;
  // Volatile teardown after a committed flush-back: retires every slab,
  // scrubs the free lists, and marks the PuddleArena dead.
  void DropPuddleArena(PuddleArena* pa);
  // Moves every PuddleArena and pending free of `other` into this arena
  // (thread-exit handoff; `other`'s dir slots stay claimed until flush).
  void Adopt(ThreadArena&& other);

  bool spill_hint() const { return spill_hint_; }
  void clear_spill_hint() { spill_hint_ = false; }
  size_t free_slot_count() const { return free_count_; }
  const ArenaOptions& options() const { return options_; }

 private:
  friend class ArenaManager;

  struct PopRecord {
    PuddleArena* pa;
    ArenaSlab* slab;
    int slot;
  };
  struct AcquireRecord {
    PuddleArena* pa;
    ArenaSlab* slab;
    int64_t prev_chain_head;
  };
  struct SpillRecord {
    PuddleArena* pa;
    ArenaSlab* slab;
    int64_t prev_chain_head;
  };
  struct PendingFree {
    PuddleArena* pa;
    ArenaSlab* slab;
    int slot;
    uint64_t epoch;
  };

  // Shared resolver behind OwnsLocally/TryLocalFree: bounds-checks the
  // address against each puddle's heap range (so an address in another
  // puddle can never alias a slab record), then maps it to a live slot.
  bool ResolveLocal(const void* header_addr, PuddleArena** pa_out,
                    ArenaSlab** slab_out, int* slot_out) const;

  ArenaOptions options_;
  std::vector<std::unique_ptr<PuddleArena>> puddles_;
  size_t free_count_ = 0;
  bool spill_hint_ = false;

  void* cur_tx_ = nullptr;
  std::vector<PopRecord> tx_pops_;
  std::vector<PuddleArena*> tx_claims_;
  std::vector<AcquireRecord> tx_acquires_;
  std::vector<SpillRecord> tx_spills_;
  std::vector<PendingFree> pending_;
};

// Pool-scoped coordinator: hands each thread its ThreadArena, queues
// cross-thread frees, and keeps orphaned arenas (exited threads) until a
// live thread adopts them. The mutex guards only slow-path state — remote
// queues, orphans, the registry — never the per-thread fast path.
class ArenaManager : public std::enable_shared_from_this<ArenaManager> {
 public:
  explicit ArenaManager(const ArenaOptions& options) : options_(options) {}

  const ArenaOptions& options() const { return options_; }

  // This thread's arena for this manager, created on first use and
  // registered with the thread-exit handoff hook.
  ThreadArena* Local();

  // Queues a free of an arena-owned slot for its owning thread to absorb on
  // its next slow path. `tag` is the slab's persistent arena tag; the record
  // is stamped with the tag's current claim generation so it can never be
  // applied through a later claim that recycled the same (uuid, tag).
  void PushRemoteFree(const Uuid& uuid, uint16_t tag, int64_t slot_offset,
                      uint64_t epoch);

  struct RemoteFree {
    Uuid uuid;
    uint16_t tag;
    uint64_t gen;  // Claim generation at publication (0 = no claim known).
    int64_t slot_offset;
    uint64_t epoch;
  };

  // Re-queues a drained record verbatim (generation preserved) — used when
  // its epoch has not matured or its consuming transaction aborted.
  void Requeue(const RemoteFree& rf);

  // Registers a fresh claim of directory slot `tag - 1` in puddle `uuid` and
  // returns its generation (monotonic, process-wide). Re-claiming a released
  // (uuid, tag) bumps the generation, invalidating queued records that were
  // published under the previous claim.
  uint64_t RegisterClaim(const Uuid& uuid, uint16_t tag);

  // Current generation of (uuid, tag), or 0 when it was never claimed.
  uint64_t ClaimGenOf(const Uuid& uuid, uint16_t tag);
  // Delivers queued remote frees that `ta` owns; returns the ones nobody
  // owns anymore (their slab went global — the caller must perform logged
  // global frees for any whose object is still live).
  std::vector<RemoteFree> DrainRemoteInto(ThreadArena* ta);

  // Thread-exit handoff target (called from the TLS destructor).
  void Orphan(std::shared_ptr<ThreadArena> arena);

  // Moves every orphan's holdings into `ta`.
  void AdoptOrphansInto(ThreadArena* ta);

  // True when any thread other than `exclude` still holds a registered,
  // non-orphaned arena — the guard that keeps RecoverArenas offline-only.
  bool HasOtherLiveArenas(const ThreadArena* exclude);

  size_t orphan_count();
  size_t queued_remote_frees();

 private:
  ArenaOptions options_;
  std::mutex mu_;
  std::vector<RemoteFree> remote_;
  std::vector<std::shared_ptr<ThreadArena>> orphans_;
  struct Registered {
    std::weak_ptr<ThreadArena> arena;
    bool orphaned = false;
  };
  std::vector<Registered> registry_;
  struct Claim {
    Uuid uuid;
    uint16_t tag;
    uint64_t gen;
  };
  // One entry per (uuid, tag) ever claimed (≤ 64 per puddle); never erased,
  // only bumped — a released claim keeps its last generation so stale queued
  // records mismatch instead of matching a default.
  std::vector<Claim> claims_;
  uint64_t next_gen_ = 0;

  uint64_t ClaimGenLocked(const Uuid& uuid, uint16_t tag) const;
  void MarkOrphaned(const ThreadArena* arena);
};

}  // namespace puddles

#endif  // SRC_ALLOC_ARENA_H_
