#include "src/alloc/slab.h"

#include <cstring>

#include "src/common/align.h"
#include "src/stats/stats.h"

namespace puddles {

void SlabAllocator::FormatDirectory(SlabDirectory* dir) {
  dir->magic = kDirectoryMagic;
  for (auto& head : dir->partial_head) {
    head = -1;
  }
}

int SlabAllocator::ClassForSize(size_t total) {
  for (size_t i = 0; i < kNumSlabClasses; ++i) {
    if (total <= kSlabSlotSizes[i]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SlabAllocator::PushPartial(int class_index, int64_t slab_offset, Phase phase) {
  SlabHeader* slab = SlabAt(slab_offset);
  if (phase == Phase::kDeclare) {
    sink_.WillWrite(&slab->next_partial, sizeof(int64_t) * 2);
    if (dir_->partial_head[class_index] >= 0) {
      sink_.WillWrite(&SlabAt(dir_->partial_head[class_index])->prev_partial, sizeof(int64_t));
    }
    sink_.WillWrite(&dir_->partial_head[class_index], sizeof(int64_t));
    return;
  }
  slab->next_partial = dir_->partial_head[class_index];
  slab->prev_partial = -1;
  if (dir_->partial_head[class_index] >= 0) {
    SlabHeader* head = SlabAt(dir_->partial_head[class_index]);
    head->prev_partial = slab_offset;
  }
  dir_->partial_head[class_index] = slab_offset;
}

void SlabAllocator::RemovePartial(int class_index, int64_t slab_offset, Phase phase) {
  SlabHeader* slab = SlabAt(slab_offset);
  if (phase == Phase::kDeclare) {
    if (slab->prev_partial >= 0) {
      sink_.WillWrite(&SlabAt(slab->prev_partial)->next_partial, sizeof(int64_t));
    } else {
      sink_.WillWrite(&dir_->partial_head[class_index], sizeof(int64_t));
    }
    if (slab->next_partial >= 0) {
      sink_.WillWrite(&SlabAt(slab->next_partial)->prev_partial, sizeof(int64_t));
    }
    return;
  }
  if (slab->prev_partial >= 0) {
    SlabHeader* prev = SlabAt(slab->prev_partial);
    prev->next_partial = slab->next_partial;
  } else {
    dir_->partial_head[class_index] = slab->next_partial;
  }
  if (slab->next_partial >= 0) {
    SlabHeader* next = SlabAt(slab->next_partial);
    next->prev_partial = slab->prev_partial;
  }
}

puddles::Result<int64_t> SlabAllocator::Allocate(size_t total) {
  int class_index = ClassForSize(total);
  if (class_index < 0) {
    return InvalidArgumentError("slab allocation too large");
  }

  int64_t slab_offset = dir_->partial_head[class_index];
  const bool carved = slab_offset < 0;
  if (carved) {
    // No partial slab: carve a new one from the buddy allocator (which runs
    // its own declare/publish/apply group). The whole block is fresh to this
    // transaction — its old bytes are dead — so undo captures inside it are
    // elided and commit persists its new contents instead.
    ASSIGN_OR_RETURN(slab_offset, buddy_->Allocate(kSlabBlockSize));
    sink_.NoteFresh(SlabAt(slab_offset), kSlabBlockSize);
    PUDDLES_COUNT(kSlabCarve);
  }

  SlabHeader* slab = SlabAt(slab_offset);
  const int num_slots = carved ? static_cast<int>(SlotsPerSlab(class_index)) : slab->num_slots;
  // A carved slab always hands out slot 0; otherwise find the first clear
  // bit. Decided before the mutation group, since a carved header is not
  // readable until the apply pass initializes it.
  int slot = carved ? 0 : -1;
  for (int word = 0; word < 2 && slot < 0; ++word) {
    uint64_t bits = slab->bitmap[word];
    if (bits != ~0ULL) {
      int bit = __builtin_ctzll(~bits);
      int candidate = word * 64 + bit;
      if (candidate < num_slots) {
        slot = candidate;
      }
    }
  }
  if (slot < 0) {
    return InternalError("partial slab with no free slot");
  }
  const int used_after = (carved ? 0 : slab->used) + 1;
  const bool fills = used_after == num_slots;  // Never true when carved.

  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    if (carved) {
      if (phase == Phase::kDeclare) {
        sink_.WillWrite(slab, sizeof(SlabHeader));  // Elided: fresh block.
      } else {
        std::memset(slab, 0, sizeof(SlabHeader));
        slab->magic = kSlabMagic;
        slab->class_index = static_cast<uint16_t>(class_index);
        slab->num_slots = static_cast<uint16_t>(num_slots);
        slab->next_partial = -1;
        slab->prev_partial = -1;
      }
      PushPartial(class_index, slab_offset, phase);
    }
    if (phase == Phase::kDeclare) {
      sink_.WillWrite(&slab->bitmap[slot / 64], sizeof(uint64_t));
      sink_.WillWrite(&slab->used, sizeof(slab->used));
    } else {
      slab->bitmap[slot / 64] |= 1ULL << (slot % 64);
      slab->used++;
    }
    if (fills) {
      RemovePartial(class_index, slab_offset, phase);
      if (phase == Phase::kDeclare) {
        sink_.WillWrite(&slab->next_partial, sizeof(int64_t) * 2);
      } else {
        slab->next_partial = -1;
        slab->prev_partial = -1;
      }
    }
  }
  PUDDLES_COUNT(kSlabAlloc);
  return slab_offset + static_cast<int64_t>(sizeof(SlabHeader)) +
         static_cast<int64_t>(slot) * kSlabSlotSizes[class_index];
}

puddles::Status SlabAllocator::Free(int64_t slot_offset) {
  const int64_t slab_offset = static_cast<int64_t>(
      AlignDown(static_cast<uint64_t>(slot_offset), kSlabBlockSize));
  SlabHeader* slab = SlabAt(slab_offset);
  if (slab->magic != kSlabMagic) {
    return FailedPreconditionError("slab free: offset not inside a slab");
  }
  if (slab->arena_slot != 0) {
    // Arena-owned slab: the persistent bitmap is stale shadow of the owning
    // thread's volatile state — a logged bitmap free here would corrupt both
    // views. Arena frees are volatile (docs/alloc.md); route through the pool.
    return FailedPreconditionError("slab free: slot belongs to a per-thread arena");
  }
  const int class_index = slab->class_index;
  const int64_t slot_area = slot_offset - slab_offset - static_cast<int64_t>(sizeof(SlabHeader));
  if (slot_area < 0 || slot_area % kSlabSlotSizes[class_index] != 0) {
    return InvalidArgumentError("slab free: misaligned slot offset");
  }
  const int slot = static_cast<int>(slot_area / kSlabSlotSizes[class_index]);
  if (slot >= slab->num_slots ||
      (slab->bitmap[slot / 64] & (1ULL << (slot % 64))) == 0) {
    return FailedPreconditionError("slab free: slot not allocated");
  }

  const bool was_full = slab->used == slab->num_slots;
  const bool empties = slab->used == 1;

  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    if (phase == Phase::kDeclare) {
      sink_.WillWrite(&slab->bitmap[slot / 64], sizeof(uint64_t));
      sink_.WillWrite(&slab->used, sizeof(slab->used));
    } else {
      slab->bitmap[slot / 64] &= ~(1ULL << (slot % 64));
      slab->used--;
    }
    if (empties) {
      if (!was_full) {
        RemovePartial(class_index, slab_offset, phase);
      }
      if (phase == Phase::kDeclare) {
        sink_.WillWrite(&slab->magic, sizeof(slab->magic));
      } else {
        slab->magic = 0;
      }
    } else if (was_full) {
      PushPartial(class_index, slab_offset, phase);
    }
  }
  PUDDLES_COUNT(kSlabFree);
  if (empties) {
    // Return the whole slab to the buddy allocator (its own group).
    PUDDLES_COUNT(kSlabRetire);
    return buddy_->Free(slab_offset);
  }
  return OkStatus();
}

puddles::Result<int64_t> SlabAllocator::CarveArenaSlab(int class_index, uint16_t arena_slot,
                                                       int64_t arena_next) {
  if (class_index < 0 || static_cast<size_t>(class_index) >= kNumSlabClasses) {
    return InvalidArgumentError("arena carve: bad class index");
  }
  if (arena_slot == 0) {
    return InvalidArgumentError("arena carve: arena tag must be nonzero");
  }
  ASSIGN_OR_RETURN(const int64_t slab_offset, buddy_->Allocate(kSlabBlockSize));
  SlabHeader* slab = SlabAt(slab_offset);
  // Fresh block: old bytes are dead, so the header write below is a declared
  // range that commit persists as new contents rather than undo-capturing.
  sink_.NoteFresh(slab, kSlabBlockSize);
  PUDDLES_COUNT(kSlabCarve);

  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    if (phase == Phase::kDeclare) {
      sink_.WillWrite(slab, sizeof(SlabHeader));  // Elided: fresh block.
    } else {
      std::memset(slab, 0, sizeof(SlabHeader));
      slab->magic = kSlabMagic;
      slab->class_index = static_cast<uint16_t>(class_index);
      slab->num_slots = static_cast<uint16_t>(SlotsPerSlab(class_index));
      slab->arena_slot = arena_slot;
      slab->next_partial = -1;
      slab->prev_partial = -1;
      slab->arena_next = arena_next;
    }
  }
  return slab_offset;
}

puddles::Result<int64_t> SlabAllocator::AdoptPartialForArena(int class_index,
                                                             uint16_t arena_slot,
                                                             int64_t arena_next) {
  if (class_index < 0 || static_cast<size_t>(class_index) >= kNumSlabClasses) {
    return InvalidArgumentError("arena adopt: bad class index");
  }
  if (arena_slot == 0) {
    return InvalidArgumentError("arena adopt: arena tag must be nonzero");
  }
  const int64_t slab_offset = dir_->partial_head[class_index];
  if (slab_offset < 0) {
    return static_cast<int64_t>(-1);
  }
  SlabHeader* slab = SlabAt(slab_offset);
  if (slab->magic != kSlabMagic || slab->class_index != class_index) {
    return DataLossError("arena adopt: partial head corrupt");
  }

  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    RemovePartial(class_index, slab_offset, phase);
    if (phase == Phase::kDeclare) {
      sink_.WillWrite(&slab->arena_slot, sizeof(slab->arena_slot));
      sink_.WillWrite(&slab->next_partial, sizeof(int64_t) * 2);
      sink_.WillWrite(&slab->arena_next, sizeof(slab->arena_next));
    } else {
      slab->arena_slot = arena_slot;
      slab->next_partial = -1;
      slab->prev_partial = -1;
      slab->arena_next = arena_next;
    }
  }
  return slab_offset;
}

puddles::Status SlabAllocator::ReleaseArenaSlab(int64_t slab_offset,
                                                const uint64_t bitmap[2], uint16_t used) {
  SlabHeader* slab = SlabAt(slab_offset);
  if (slab->magic != kSlabMagic) {
    return FailedPreconditionError("arena release: not a slab");
  }
  if (slab->arena_slot == 0) {
    return FailedPreconditionError("arena release: slab not arena-owned");
  }
  const int class_index = slab->class_index;
  const int popcount = __builtin_popcountll(bitmap[0]) + __builtin_popcountll(bitmap[1]);
  if (popcount != used || used > slab->num_slots) {
    return InvalidArgumentError("arena release: occupancy does not match bitmap");
  }
  const bool empties = used == 0;
  const bool full = used == slab->num_slots;

  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    if (phase == Phase::kDeclare) {
      sink_.WillWrite(&slab->bitmap[0], sizeof(uint64_t) * 2);
      sink_.WillWrite(&slab->used, sizeof(slab->used));
      sink_.WillWrite(&slab->arena_slot, sizeof(slab->arena_slot));
      sink_.WillWrite(&slab->arena_next, sizeof(slab->arena_next));
    } else {
      slab->bitmap[0] = bitmap[0];
      slab->bitmap[1] = bitmap[1];
      slab->used = used;
      slab->arena_slot = 0;
      slab->arena_next = 0;
    }
    if (empties) {
      if (phase == Phase::kDeclare) {
        sink_.WillWrite(&slab->magic, sizeof(slab->magic));
      } else {
        slab->magic = 0;
      }
    } else if (!full) {
      PushPartial(class_index, slab_offset, phase);
    }
  }
  if (empties) {
    PUDDLES_COUNT(kSlabRetire);
    return buddy_->Free(slab_offset);
  }
  return OkStatus();
}

bool SlabAllocator::IsSlabBlock(int64_t block_offset) const {
  if (buddy_->BlockSize(block_offset) != kSlabBlockSize) {
    return false;
  }
  return SlabAt(block_offset)->magic == kSlabMagic;
}

void SlabAllocator::ForEachSlot(int64_t block_offset,
                                const std::function<void(int64_t, size_t)>& fn) const {
  const SlabHeader* slab = SlabAt(block_offset);
  const size_t slot_size = kSlabSlotSizes[slab->class_index];
  // Arena-owned slab: the persistent bitmap is stale, so every slot is a
  // candidate and the caller's object-magic check decides liveness.
  const bool enumerate_all = slab->arena_slot != 0;
  for (int slot = 0; slot < slab->num_slots; ++slot) {
    if (enumerate_all || (slab->bitmap[slot / 64] & (1ULL << (slot % 64)))) {
      fn(block_offset + static_cast<int64_t>(sizeof(SlabHeader)) +
             static_cast<int64_t>(slot) * static_cast<int64_t>(slot_size),
         slot_size);
    }
  }
}

puddles::Status SlabAllocator::Validate() const {
  if (dir_->magic != kDirectoryMagic) {
    return DataLossError("slab directory magic mismatch");
  }
  for (size_t cls = 0; cls < kNumSlabClasses; ++cls) {
    int64_t prev = -1;
    size_t guard = buddy_->heap_size() / kSlabBlockSize + 1;
    for (int64_t off = dir_->partial_head[cls]; off >= 0;) {
      if (guard-- == 0) {
        return DataLossError("slab partial list cycle");
      }
      const SlabHeader* slab = SlabAt(off);
      if (slab->magic != kSlabMagic || slab->class_index != cls) {
        return DataLossError("slab partial list node corrupt");
      }
      if (slab->arena_slot != 0) {
        return DataLossError("arena-owned slab on global partial list");
      }
      if (slab->used >= slab->num_slots) {
        return DataLossError("full slab on partial list");
      }
      if (slab->prev_partial != prev) {
        return DataLossError("slab partial back-link mismatch");
      }
      int popcount = __builtin_popcountll(slab->bitmap[0]) +
                     __builtin_popcountll(slab->bitmap[1]);
      if (popcount != slab->used) {
        return DataLossError("slab used count does not match bitmap");
      }
      prev = off;
      off = slab->next_partial;
    }
  }
  return OkStatus();
}

}  // namespace puddles
