// Per-puddle buddy allocator (paper §4.5: "Large allocations are allocated
// from a per-puddle buddy allocator").
//
// The allocator manages a power-of-two heap. All of its state lives in two
// caller-provided regions so it can be placed on persistent memory inside a
// puddle's header:
//   * a metadata region (BuddyHeader + one state byte per 256 B min-block),
//   * the heap itself (free blocks double as free-list nodes).
//
// Offsets, never pointers, are stored in the metadata, so the structure is
// position-independent — a relocated puddle's allocator state needs no
// translation. Every metadata write is announced through a LogSink so
// transactions can undo-log it (src/alloc/log_sink.h). Each operation runs in
// two passes over the same decision sequence: a declare pass that announces
// every range it will touch (no stores), one sink Publish() — a single fence
// covering the whole group — and an apply pass that performs the stores. The
// two passes stay in lockstep because every branch decision reads state that
// the apply pass has not yet modified at that point in the sequence.
//
// The state-byte array additionally makes allocated blocks *discoverable*:
// ForEachAllocated() underpins the pointer-rewriting pass of §4.2 ("puddles
// use allocator metadata to locate internal heap objects").
#ifndef SRC_ALLOC_BUDDY_H_
#define SRC_ALLOC_BUDDY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/alloc/log_sink.h"
#include "src/common/status.h"

namespace puddles {

class BuddyAllocator {
 public:
  static constexpr size_t kMinBlockLog2 = 8;  // 256 B minimum block.
  static constexpr size_t kMinBlockSize = 1ULL << kMinBlockLog2;
  static constexpr int kMaxOrders = 32;
  static constexpr uint64_t kMetaMagic = 0x5044424459303144ULL;  // "PDBDY01D"

  // Bytes of metadata needed for a heap of `heap_size` (power of two).
  static size_t MetaSize(size_t heap_size);

  // One-time initialization of a fresh heap. `meta` must hold MetaSize bytes.
  static puddles::Status Format(void* meta, void* heap, size_t heap_size);

  // Attaches to an existing formatted heap. Returns error if the metadata
  // magic or geometry does not match.
  static puddles::Result<BuddyAllocator> Attach(void* meta, void* heap, size_t heap_size,
                                                LogSink sink = {});

  BuddyAllocator() = default;

  void set_log_sink(LogSink sink) { sink_ = sink; }

  // Allocates a block of at least `size` bytes (rounded up to a power-of-two
  // order ≥ 256 B). Returns the heap offset, or error when exhausted.
  puddles::Result<int64_t> Allocate(size_t size);

  // Frees the block starting at `offset` (must be an allocation start).
  puddles::Status Free(int64_t offset);

  // Size of the allocated block starting at `offset` (0 if not a start).
  size_t BlockSize(int64_t offset) const;

  bool IsAllocatedStart(int64_t offset) const;

  uint64_t free_bytes() const;
  size_t heap_size() const { return heap_size_; }
  void* heap() const { return heap_; }

  // Invokes `fn(offset, size)` for every allocated block, in address order.
  void ForEachAllocated(const std::function<void(int64_t, size_t)>& fn) const;

  // Exhaustive invariant check (free lists ↔ state bytes ↔ byte accounting).
  // Returns error describing the first inconsistency found.
  puddles::Status Validate() const;

 private:
  struct Header {
    uint64_t magic;
    uint64_t heap_size;
    uint32_t num_orders;
    uint32_t reserved;
    uint64_t free_bytes;
    int64_t free_head[kMaxOrders];  // Heap offset of first free block; -1 empty.
    // State bytes follow (one per min-block).
  };

  struct FreeNode {
    int64_t next;  // Heap offset or -1.
    int64_t prev;
    uint32_t order;
    uint32_t check;  // ~order, guards against interpreting data as a node.
  };

  static constexpr uint8_t kStateFreeStart = 0xFE;
  static constexpr uint8_t kStateInterior = 0xFF;

  BuddyAllocator(Header* header, uint8_t* state, uint8_t* heap, size_t heap_size, LogSink sink)
      : header_(header), state_(state), heap_(heap), heap_size_(heap_size), sink_(sink) {}

  size_t NumBlocks() const { return heap_size_ >> kMinBlockLog2; }
  size_t BlockIndex(int64_t offset) const { return static_cast<size_t>(offset) >> kMinBlockLog2; }
  FreeNode* NodeAt(int64_t offset) const { return reinterpret_cast<FreeNode*>(heap_ + offset); }
  static size_t OrderSize(uint32_t order) { return kMinBlockSize << order; }
  static uint32_t OrderForSize(size_t size);

  // Two-pass mutation protocol: kDeclare announces ranges via the sink and
  // must be store-free; kApply performs the stores (after the group's
  // Publish). Helpers take the phase so declare and apply cannot drift.
  enum class Phase { kDeclare, kApply };

  void PushFree(int64_t offset, uint32_t order, Phase phase);
  void RemoveFree(int64_t offset, uint32_t order, Phase phase);
  void SetState(size_t index, uint8_t value, Phase phase);
  void SetFreeBytes(uint64_t value, Phase phase);

  Header* header_ = nullptr;
  uint8_t* state_ = nullptr;
  uint8_t* heap_ = nullptr;
  size_t heap_size_ = 0;
  LogSink sink_;
};

}  // namespace puddles

#endif  // SRC_ALLOC_BUDDY_H_
