// Write-ahead hook connecting allocators to the transaction runtime.
//
// Paper §4.1/§4.5: allocator metadata updates are crash-consistent because the
// allocator undo-logs every metadata word it is about to modify ("This new
// node is automatically undo-logged by the allocator", Fig. 8). The allocator
// itself stays logging-agnostic: it announces impending writes through a
// LogSink, and the transaction runtime (src/tx/) records the undo entries.
//
// Group contract (DESIGN.md §10): WillWrite only *declares* — it stages an
// undo capture without any ordering guarantee. The allocator must declare
// every range of a mutation group first, call Publish() once (a single fence
// publishes the whole staged batch), and only then perform the stores. A
// store to a declared-but-unpublished range is a crash-consistency bug.
// Sinks that persist eagerly (the baselines fence inside WillWrite and leave
// publish_fn null) satisfy the contract trivially — publication just happens
// earlier than required.
#ifndef SRC_ALLOC_LOG_SINK_H_
#define SRC_ALLOC_LOG_SINK_H_

#include <cstddef>

namespace puddles {

// Non-owning callback bundle. All members may be null (no-op sink).
struct LogSink {
  void* ctx = nullptr;
  // Declares that [addr, addr+size) will be modified after the next
  // Publish(); invoked while the range still holds the old value.
  void (*fn)(void* ctx, void* addr, size_t size) = nullptr;
  // Publication point: makes every declaration since the previous
  // publication durable under one fence.
  void (*publish_fn)(void* ctx) = nullptr;
  // Marks [addr, addr+size) as freshly carved by this transaction: its old
  // bytes are meaningless, so undo captures inside it are elided and its new
  // contents are flushed at commit stage 1.
  void (*fresh_fn)(void* ctx, void* addr, size_t size) = nullptr;

  void WillWrite(void* addr, size_t size) const {
    if (fn != nullptr) {
      fn(ctx, addr, size);
    }
  }

  void Publish() const {
    if (publish_fn != nullptr) {
      publish_fn(ctx);
    }
  }

  void NoteFresh(void* addr, size_t size) const {
    if (fresh_fn != nullptr) {
      fresh_fn(ctx, addr, size);
    }
  }
};

}  // namespace puddles

#endif  // SRC_ALLOC_LOG_SINK_H_
