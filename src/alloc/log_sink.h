// Write-ahead hook connecting allocators to the transaction runtime.
//
// Paper §4.1/§4.5: allocator metadata updates are crash-consistent because the
// allocator undo-logs every metadata word it is about to modify ("This new
// node is automatically undo-logged by the allocator", Fig. 8). The allocator
// itself stays logging-agnostic: it announces each impending write through a
// LogSink, and the transaction runtime (src/tx/) records the undo entry.
#ifndef SRC_ALLOC_LOG_SINK_H_
#define SRC_ALLOC_LOG_SINK_H_

#include <cstddef>

namespace puddles {

// Non-owning callback: `fn(ctx, addr, size)` is invoked before [addr,
// addr+size) is modified, while it still holds the old value.
struct LogSink {
  void* ctx = nullptr;
  void (*fn)(void* ctx, void* addr, size_t size) = nullptr;

  void WillWrite(void* addr, size_t size) const {
    if (fn != nullptr) {
      fn(ctx, addr, size);
    }
  }
};

}  // namespace puddles

#endif  // SRC_ALLOC_LOG_SINK_H_
