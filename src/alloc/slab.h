// Size-class slab allocator for small objects (paper §4.5: "per-type slab
// allocators manage small allocations (< 256 B)"; we key slabs by size class
// and keep the type in the per-object header, which preserves the pointer
// discoverability that the paper wants from per-type slabs while letting
// classes be shared).
//
// Each slab is one 4 KiB block obtained from the puddle's buddy allocator:
// a 64 B header (occupancy bitmap + partial-list links, offsets only) followed
// by fixed-size slots. Slabs with free slots are chained per class from a
// directory that lives in the puddle's metadata region.
#ifndef SRC_ALLOC_SLAB_H_
#define SRC_ALLOC_SLAB_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/alloc/buddy.h"
#include "src/alloc/log_sink.h"
#include "src/common/status.h"

namespace puddles {

inline constexpr uint32_t kSlabMagic = 0x534c4231;  // "SLB1"
inline constexpr size_t kSlabBlockSize = 4096;

// Slot sizes must cover ObjectHeader (16 B) + payload. Payloads above
// kMaxSlabPayload go to the buddy allocator directly.
inline constexpr std::array<uint16_t, 7> kSlabSlotSizes = {32, 48, 64, 96, 128, 192, 272};
inline constexpr size_t kNumSlabClasses = kSlabSlotSizes.size();
inline constexpr size_t kMaxSlabSlot = 272;

struct SlabHeader {
  uint32_t magic;
  uint16_t class_index;
  uint16_t num_slots;
  uint16_t used;
  // Arena ownership tag (docs/alloc.md): 0 = global slab (partial-list
  // discipline, bitmap authoritative), else directory slot + 1 of the
  // per-thread arena that owns the slab. While a slab is arena-owned, its
  // bitmap and used count are STALE — the owning thread tracks occupancy in
  // volatile shadow state and hot-path alloc/free never store here. Recovery
  // reconstructs the bitmap by root reachability (GC) before untagging.
  uint16_t arena_slot;
  uint32_t reserved1;
  int64_t next_partial;  // Heap offset of the next slab with free slots; -1.
  int64_t prev_partial;
  uint64_t bitmap[2];  // Bit i set = slot i allocated. ≤126 slots per slab.
  // Next slab in the owning arena's persistent chain (rooted at the arena
  // directory entry); -1 terminates. Only meaningful when arena_slot != 0.
  int64_t arena_next;
  uint64_t reserved3;
};
static_assert(sizeof(SlabHeader) == 64, "slab header must be exactly one cache line");

// Lives in the puddle metadata region next to the buddy metadata.
struct SlabDirectory {
  uint64_t magic;
  int64_t partial_head[kNumSlabClasses];  // Heap offsets; -1 when empty.
};

class SlabAllocator {
 public:
  static constexpr uint64_t kDirectoryMagic = 0x50444c534c414231ULL;  // "PDLSLAB1"

  static void FormatDirectory(SlabDirectory* dir);

  // `dir` must point at a formatted SlabDirectory; `buddy` supplies 4 KiB
  // blocks from the same heap.
  SlabAllocator(SlabDirectory* dir, BuddyAllocator* buddy, LogSink sink = {})
      : dir_(dir), buddy_(buddy), sink_(sink) {}

  void set_log_sink(LogSink sink) { sink_ = sink; }

  // Smallest class whose slot fits `total` bytes, or -1 if it needs the buddy.
  static int ClassForSize(size_t total);

  // Allocates one slot able to hold `total` bytes. Returns the heap offset of
  // the slot start.
  puddles::Result<int64_t> Allocate(size_t total);

  // Frees the slot at `slot_offset`, which must lie inside a live slab.
  puddles::Status Free(int64_t slot_offset);

  // True if the allocated buddy block at `block_offset` is a slab.
  bool IsSlabBlock(int64_t block_offset) const;

  // Invokes `fn(slot_offset, slot_size)` for every live slot in the slab at
  // `block_offset`. For an arena-owned slab the persistent bitmap is stale,
  // so every slot is enumerated and the caller's object-magic check decides
  // liveness (ObjectHeap::ForEachObject does exactly that).
  void ForEachSlot(int64_t block_offset, const std::function<void(int64_t, size_t)>& fn) const;

  // Cross-checks directory lists and slab bitmaps.
  puddles::Status Validate() const;

  // ---- Per-thread arena refill/flush contract (docs/alloc.md) ----
  //
  // All three run under the allocator group protocol through the installed
  // sink, so a transactional caller gets full undo coverage: a crash (or
  // abort) mid-refill / mid-flush-back rolls the slab metadata back cleanly.

  // Carves a fresh 4 KiB slab from the buddy for an arena: header formatted
  // with an empty bitmap, tagged with `arena_slot` (directory slot + 1) and
  // chained via `arena_next`, and NOT pushed onto the global partial list.
  // Returns the slab's heap offset.
  puddles::Result<int64_t> CarveArenaSlab(int class_index, uint16_t arena_slot,
                                          int64_t arena_next);

  // Pops the head of `class_index`'s global partial list and transfers it to
  // an arena: tagged, chained, removed from the partial list; bitmap and used
  // count keep describing the pre-existing live slots (the adopter seeds its
  // shadow state from them). Returns the slab offset, or -1 when the partial
  // list is empty.
  puddles::Result<int64_t> AdoptPartialForArena(int class_index, uint16_t arena_slot,
                                                int64_t arena_next);

  // Returns an arena-owned slab to global ownership: persists the true
  // occupancy (`bitmap`/`used`, from the owner's shadow state or from GC
  // reachability), clears the arena tag and chain link, then re-enters the
  // slab into the global discipline — partial list when partially full,
  // nothing when full, retired to the buddy when empty. Used by flush-back
  // and by post-crash GC recovery.
  puddles::Status ReleaseArenaSlab(int64_t slab_offset, const uint64_t bitmap[2],
                                   uint16_t used);

 private:
  uint8_t* heap() const { return static_cast<uint8_t*>(buddy_->heap()); }
  SlabHeader* SlabAt(int64_t offset) const {
    return reinterpret_cast<SlabHeader*>(heap() + offset);
  }

  static size_t SlotsPerSlab(int class_index) {
    return (kSlabBlockSize - sizeof(SlabHeader)) / kSlabSlotSizes[class_index];
  }

  // Two-pass mutation protocol (see buddy.h): declare announces ranges
  // through the sink without storing; apply stores after the group's single
  // Publish() fence.
  enum class Phase { kDeclare, kApply };

  void PushPartial(int class_index, int64_t slab_offset, Phase phase);
  void RemovePartial(int class_index, int64_t slab_offset, Phase phase);

  SlabDirectory* dir_;
  BuddyAllocator* buddy_;
  LogSink sink_;
};

}  // namespace puddles

#endif  // SRC_ALLOC_SLAB_H_
