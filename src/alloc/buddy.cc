#include "src/alloc/buddy.h"

#include <cstring>

#include "src/common/align.h"
#include "src/common/bug_hooks.h"
#include "src/stats/stats.h"

namespace puddles {

size_t BuddyAllocator::MetaSize(size_t heap_size) {
  return sizeof(Header) + (heap_size >> kMinBlockLog2);
}

uint32_t BuddyAllocator::OrderForSize(size_t size) {
  if (size <= kMinBlockSize) {
    return 0;
  }
  return static_cast<uint32_t>(Log2Ceil(size)) - kMinBlockLog2;
}

puddles::Status BuddyAllocator::Format(void* meta, void* heap, size_t heap_size) {
  if (!IsPowerOfTwo(heap_size) || heap_size < kMinBlockSize) {
    return InvalidArgumentError("buddy heap size must be a power of two >= 256");
  }
  auto* header = static_cast<Header*>(meta);
  auto* state = reinterpret_cast<uint8_t*>(header + 1);
  const size_t num_blocks = heap_size >> kMinBlockLog2;
  const uint32_t num_orders = static_cast<uint32_t>(Log2Floor(heap_size) - kMinBlockLog2) + 1;
  if (num_orders > kMaxOrders) {
    return InvalidArgumentError("buddy heap too large");
  }

  header->magic = kMetaMagic;
  header->heap_size = heap_size;
  header->num_orders = num_orders;
  header->reserved = 0;
  header->free_bytes = heap_size;
  for (auto& head : header->free_head) {
    head = -1;
  }
  std::memset(state, kStateInterior, num_blocks);

  // The whole heap starts as one free block of the top order.
  state[0] = kStateFreeStart;
  auto* node = reinterpret_cast<FreeNode*>(heap);
  node->next = -1;
  node->prev = -1;
  node->order = num_orders - 1;
  node->check = ~node->order;
  header->free_head[num_orders - 1] = 0;
  return OkStatus();
}

puddles::Result<BuddyAllocator> BuddyAllocator::Attach(void* meta, void* heap, size_t heap_size,
                                                       LogSink sink) {
  auto* header = static_cast<Header*>(meta);
  if (header->magic != kMetaMagic) {
    return DataLossError("buddy metadata magic mismatch");
  }
  if (header->heap_size != heap_size) {
    return DataLossError("buddy heap size mismatch");
  }
  auto* state = reinterpret_cast<uint8_t*>(header + 1);
  return BuddyAllocator(header, state, static_cast<uint8_t*>(heap), heap_size, sink);
}

void BuddyAllocator::SetState(size_t index, uint8_t value, Phase phase) {
  if (phase == Phase::kDeclare) {
    sink_.WillWrite(&state_[index], 1);
    return;
  }
  state_[index] = value;
}

void BuddyAllocator::SetFreeBytes(uint64_t value, Phase phase) {
  if (phase == Phase::kDeclare) {
    sink_.WillWrite(&header_->free_bytes, sizeof(header_->free_bytes));
    return;
  }
  header_->free_bytes = value;
}

void BuddyAllocator::PushFree(int64_t offset, uint32_t order, Phase phase) {
  FreeNode* node = NodeAt(offset);
  if (phase == Phase::kDeclare) {
    sink_.WillWrite(node, sizeof(FreeNode));
    if (header_->free_head[order] >= 0) {
      sink_.WillWrite(&NodeAt(header_->free_head[order])->prev, sizeof(int64_t));
    }
    sink_.WillWrite(&header_->free_head[order], sizeof(int64_t));
    return;
  }
  node->next = header_->free_head[order];
  node->prev = -1;
  node->order = order;
  node->check = ~order;
  if (header_->free_head[order] >= 0) {
    FreeNode* head = NodeAt(header_->free_head[order]);
    head->prev = offset;
  }
  header_->free_head[order] = offset;
}

void BuddyAllocator::RemoveFree(int64_t offset, uint32_t order, Phase phase) {
  FreeNode* node = NodeAt(offset);
  if (phase == Phase::kDeclare) {
    if (node->prev >= 0) {
      sink_.WillWrite(&NodeAt(node->prev)->next, sizeof(int64_t));
    } else {
      sink_.WillWrite(&header_->free_head[order], sizeof(int64_t));
    }
    if (node->next >= 0) {
      sink_.WillWrite(&NodeAt(node->next)->prev, sizeof(int64_t));
    }
    return;
  }
  if (node->prev >= 0) {
    FreeNode* prev = NodeAt(node->prev);
    prev->next = node->next;
  } else {
    header_->free_head[order] = node->next;
  }
  if (node->next >= 0) {
    FreeNode* next = NodeAt(node->next);
    next->prev = node->prev;
  }
}

puddles::Result<int64_t> BuddyAllocator::Allocate(size_t size) {
  if (size == 0 || size > heap_size_) {
    return InvalidArgumentError("buddy allocation size out of range");
  }
  const uint32_t want = OrderForSize(size);
  uint32_t start_order = want;
  while (start_order < header_->num_orders && header_->free_head[start_order] < 0) {
    ++start_order;
  }
  if (start_order >= header_->num_orders) {
    return OutOfMemoryError("buddy heap exhausted");
  }

  const int64_t offset = header_->free_head[start_order];

  // The popped head must look like a free node of this order before anything
  // dereferences its links. A free list chained through caller data (the
  // reachable-after-rollback hole the protective capture below closes) fails
  // here as a contained DataLossError instead of a wild pointer chase.
  const FreeNode* head = NodeAt(offset);
  if (head->order != start_order || head->check != ~start_order || head->prev != -1 ||
      head->next < -1 ||
      (head->next >= 0 &&
       (static_cast<size_t>(head->next) + sizeof(FreeNode) > heap_size_ ||
        !IsAligned(static_cast<uint64_t>(head->next), kMinBlockSize)))) {
    return DataLossError("buddy free list corrupt at head");
  }

  // Two passes over the same sequence: declare every touched range, publish
  // the whole group under one fence, then store. The splits push at strictly
  // descending orders while the removal touched only start_order's list, so
  // no apply-phase store changes a value a later step (in either phase)
  // reads.
  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    RemoveFree(offset, start_order, phase);
    if (phase == Phase::kDeclare &&
        !bug_hooks::buddy_skip_protective_capture.load(std::memory_order_relaxed)) {
      // Protective capture of the returned block's free-list node: if the
      // transaction rolls back, this block is free again and free_head points
      // at these bytes — but the caller may legitimately overwrite them (a
      // slab header or object header lands at the block start) with the
      // overwrite elided as a fresh-range store. The node content is
      // reachable-after-rollback state, so the allocator owns its capture.
      sink_.WillWrite(NodeAt(offset), sizeof(FreeNode));
    }
    uint32_t order = start_order;
    while (order > want) {
      --order;
      int64_t buddy = offset + static_cast<int64_t>(OrderSize(order));
      SetState(BlockIndex(buddy), kStateFreeStart, phase);
      PushFree(buddy, order, phase);
    }
    SetState(BlockIndex(offset), static_cast<uint8_t>(want), phase);
    SetFreeBytes(header_->free_bytes - OrderSize(want), phase);
  }
  PUDDLES_COUNT(kBuddyAlloc);
  return offset;
}

puddles::Status BuddyAllocator::Free(int64_t offset) {
  if (offset < 0 || static_cast<size_t>(offset) >= heap_size_ ||
      !IsAligned(static_cast<uint64_t>(offset), kMinBlockSize)) {
    return InvalidArgumentError("buddy free: bad offset");
  }
  uint8_t state = state_[BlockIndex(offset)];
  if (state >= kStateFreeStart) {
    return FailedPreconditionError("buddy free: not an allocated block start");
  }
  const uint32_t start_order = state;
  const int64_t start_offset = offset;
  const size_t freed = OrderSize(start_order);

  // Coalesce with free buddies as far up as possible. The merge decisions
  // read state bytes and free-node fields of blocks outside the growing
  // block, which the apply pass never stores to before reading, so both
  // passes walk the identical merge sequence.
  for (Phase phase : {Phase::kDeclare, Phase::kApply}) {
    if (phase == Phase::kApply) {
      sink_.Publish();
    }
    uint32_t order = start_order;
    offset = start_offset;
    while (order + 1 < header_->num_orders) {
      int64_t buddy = offset ^ static_cast<int64_t>(OrderSize(order));
      if (static_cast<size_t>(buddy) >= heap_size_) {
        break;
      }
      if (state_[BlockIndex(buddy)] != kStateFreeStart) {
        break;
      }
      FreeNode* buddy_node = NodeAt(buddy);
      if (buddy_node->order != order || buddy_node->check != ~order) {
        break;
      }
      RemoveFree(buddy, order, phase);
      int64_t upper = offset > buddy ? offset : buddy;
      SetState(BlockIndex(upper), kStateInterior, phase);
      offset = offset < buddy ? offset : buddy;
      ++order;
    }
    SetState(BlockIndex(offset), kStateFreeStart, phase);
    PushFree(offset, order, phase);
    SetFreeBytes(header_->free_bytes + freed, phase);
  }
  PUDDLES_COUNT(kBuddyFree);
  return OkStatus();
}

size_t BuddyAllocator::BlockSize(int64_t offset) const {
  if (offset < 0 || static_cast<size_t>(offset) >= heap_size_ ||
      !IsAligned(static_cast<uint64_t>(offset), kMinBlockSize)) {
    return 0;
  }
  uint8_t state = state_[BlockIndex(offset)];
  if (state >= kStateFreeStart) {
    return 0;
  }
  return OrderSize(state);
}

bool BuddyAllocator::IsAllocatedStart(int64_t offset) const { return BlockSize(offset) != 0; }

uint64_t BuddyAllocator::free_bytes() const { return header_->free_bytes; }

void BuddyAllocator::ForEachAllocated(const std::function<void(int64_t, size_t)>& fn) const {
  const size_t num_blocks = NumBlocks();
  for (size_t i = 0; i < num_blocks;) {
    uint8_t state = state_[i];
    if (state < kStateFreeStart) {
      const size_t size = OrderSize(state);
      fn(static_cast<int64_t>(i << kMinBlockLog2), size);
      i += size >> kMinBlockLog2;
    } else if (state == kStateFreeStart) {
      FreeNode* node = NodeAt(static_cast<int64_t>(i << kMinBlockLog2));
      i += OrderSize(node->order) >> kMinBlockLog2;
    } else {
      ++i;  // Interior byte outside any block start: skip (shouldn't happen).
    }
  }
}

puddles::Status BuddyAllocator::Validate() const {
  if (header_->magic != kMetaMagic) {
    return DataLossError("validate: bad magic");
  }
  // Walk free lists; each node's state byte must agree.
  uint64_t free_from_lists = 0;
  for (uint32_t order = 0; order < header_->num_orders; ++order) {
    int64_t prev = -1;
    size_t guard = NumBlocks() + 1;
    for (int64_t off = header_->free_head[order]; off >= 0;) {
      if (guard-- == 0) {
        return DataLossError("validate: free list cycle");
      }
      if (static_cast<size_t>(off) >= heap_size_) {
        return DataLossError("validate: free offset out of range");
      }
      if (state_[BlockIndex(off)] != kStateFreeStart) {
        return DataLossError("validate: free node without free state byte");
      }
      FreeNode* node = NodeAt(off);
      if (node->order != order || node->check != ~order) {
        return DataLossError("validate: free node order mismatch");
      }
      if (node->prev != prev) {
        return DataLossError("validate: free list back-link mismatch");
      }
      free_from_lists += OrderSize(order);
      prev = off;
      off = node->next;
    }
  }
  if (free_from_lists != header_->free_bytes) {
    return DataLossError("validate: free byte accounting mismatch");
  }
  // Walk state bytes; starts must tile the heap exactly.
  uint64_t covered = 0;
  for (size_t i = 0; i < NumBlocks();) {
    uint8_t state = state_[i];
    size_t span;
    if (state < kStateFreeStart) {
      span = OrderSize(state) >> kMinBlockLog2;
    } else if (state == kStateFreeStart) {
      FreeNode* node = NodeAt(static_cast<int64_t>(i << kMinBlockLog2));
      span = OrderSize(node->order) >> kMinBlockLog2;
    } else {
      return DataLossError("validate: interior byte at block boundary");
    }
    for (size_t j = 1; j < span; ++j) {
      if (state_[i + j] != kStateInterior) {
        return DataLossError("validate: block interior not marked interior");
      }
    }
    covered += span << kMinBlockLog2;
    i += span;
  }
  if (covered != heap_size_) {
    return DataLossError("validate: heap not fully tiled");
  }
  return OkStatus();
}

}  // namespace puddles
