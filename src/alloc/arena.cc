#include "src/alloc/arena.h"

#include <algorithm>

#include "src/common/align.h"
#include "src/stats/stats.h"

namespace puddles {

void FormatArenaDirectory(ArenaDirectory* dir) {
  dir->magic = ArenaDirectory::kMagic;
  dir->reserved = 0;
  for (auto& entry : dir->entries) {
    entry.active = 0;
    entry.slab_head = -1;
  }
}

ArenaSlab* PuddleArena::FindSlab(int64_t slab_offset) {
  for (auto& slab : slabs) {
    if (slab.offset == slab_offset && !slab.retired) {
      return &slab;
    }
  }
  return nullptr;
}

namespace {

inline void* SlotAddr(const PuddleArena* pa, const ArenaSlab* slab, int slot) {
  return pa->heap_base + slab->offset + static_cast<int64_t>(sizeof(SlabHeader)) +
         static_cast<int64_t>(slot) * kSlabSlotSizes[slab->class_index];
}

// Restores a popped slot without touching counters: shadow bit clear, object
// magic clear, back on the free list.
inline void RestoreSlot(PuddleArena* pa, ArenaSlab* slab, int slot, size_t* free_count) {
  *static_cast<uint32_t*>(SlotAddr(pa, slab, slot)) = 0;  // ObjectHeader::magic
  slab->shadow[slot / 64] &= ~(1ULL << (slot % 64));
  slab->used--;
  pa->free_lists[slab->class_index].push_back({slab, slot});
  ++*free_count;
}

}  // namespace

bool ThreadArena::TryAllocate(int class_index, AllocResult* out) {
  for (auto& pa : puddles_) {
    if (pa->dead) {
      continue;
    }
    auto& list = pa->free_lists[class_index];
    while (!list.empty()) {
      PuddleArena::FreeSlot entry = list.back();
      list.pop_back();
      free_count_--;
      if (entry.slab->retired) {
        continue;  // Acquiring tx aborted or slab spilled; entry is stale.
      }
      entry.slab->shadow[entry.slot / 64] |= 1ULL << (entry.slot % 64);
      entry.slab->used++;
      out->pa = pa.get();
      out->slab = entry.slab;
      out->slot = entry.slot;
      out->slot_offset = entry.slab->offset + static_cast<int64_t>(sizeof(SlabHeader)) +
                         static_cast<int64_t>(entry.slot) *
                             kSlabSlotSizes[entry.slab->class_index];
      out->addr = pa->heap_base + out->slot_offset;
      PUDDLES_COUNT(kArenaAlloc);
      return true;
    }
  }
  return false;
}

void ThreadArena::ReleaseSlot(PuddleArena* pa, ArenaSlab* slab, int slot) {
  if ((slab->shadow[slot / 64] & (1ULL << (slot % 64))) == 0) {
    return;  // Already free — a duplicate publish (double tx free) is inert.
  }
  // Dead slot: clearing the magic here (a plain volatile-speed store) is what
  // keeps ForEachObject's magic check honest for arena slabs; the word is
  // persisted later by the flush-back's logged occupancy write. A crash
  // before then may resurrect the magic — recovery GC decides liveness by
  // reachability, never by this word.
  *static_cast<uint32_t*>(SlotAddr(pa, slab, slot)) = 0;
  slab->shadow[slot / 64] &= ~(1ULL << (slot % 64));
  slab->used--;
  pa->free_lists[slab->class_index].push_back({slab, slot});
  free_count_++;
  if (free_count_ >= options_.flush_watermark) {
    spill_hint_ = true;
  }
  PUDDLES_COUNT(kArenaFree);
}

bool ThreadArena::ResolveLocal(const void* header_addr, PuddleArena** pa_out,
                               ArenaSlab** slab_out, int* slot_out) const {
  const auto* addr = static_cast<const uint8_t*>(header_addr);
  for (const auto& owned : puddles_) {
    PuddleArena* pa = owned.get();
    if (pa->dead || addr < pa->heap_base || addr >= pa->heap_base + pa->heap_size) {
      continue;
    }
    // Unique puddle match: resolve here or not at all.
    const int64_t header_off = addr - pa->heap_base;
    ArenaSlab* slab =
        pa->FindSlab(header_off & ~static_cast<int64_t>(kSlabBlockSize - 1));
    if (slab == nullptr || slab->retired) {
      return false;
    }
    const int64_t within =
        header_off - slab->offset - static_cast<int64_t>(sizeof(SlabHeader));
    const int64_t slot_size = static_cast<int64_t>(kSlabSlotSizes[slab->class_index]);
    if (within < 0 || within % slot_size != 0) {
      return false;
    }
    const int slot = static_cast<int>(within / slot_size);
    if (slot >= slab->num_slots ||
        (slab->shadow[slot / 64] & (1ULL << (slot % 64))) == 0) {
      return false;
    }
    *pa_out = pa;
    *slab_out = slab;
    *slot_out = slot;
    return true;
  }
  return false;
}

bool ThreadArena::OwnsLocally(const void* header_addr) const {
  PuddleArena* pa;
  ArenaSlab* slab;
  int slot;
  return ResolveLocal(header_addr, &pa, &slab, &slot);
}

bool ThreadArena::TryLocalFree(const void* header_addr, uint64_t epoch) {
  PuddleArena* pa;
  ArenaSlab* slab;
  int slot;
  if (!ResolveLocal(header_addr, &pa, &slab, &slot)) {
    return false;
  }
  if (epoch != 0) {
    AddPendingFree(pa, slab, slot, epoch);
  } else {
    ReleaseSlot(pa, slab, slot);
  }
  return true;
}

bool ThreadArena::NoteTxUse(void* tx) {
  if (cur_tx_ == tx) {
    return false;
  }
  // A different transaction identity with stale records means the previous
  // transaction ended without running its hooks (possible only on abandoned
  // test transactions); treat it as committed.
  tx_pops_.clear();
  tx_claims_.clear();
  tx_acquires_.clear();
  tx_spills_.clear();
  cur_tx_ = tx;
  return true;
}

void ThreadArena::RecordPop(PuddleArena* pa, ArenaSlab* slab, int slot) {
  tx_pops_.push_back({pa, slab, slot});
}

void ThreadArena::RecordDirClaim(PuddleArena* pa) { tx_claims_.push_back(pa); }

void ThreadArena::RecordSlabAcquired(PuddleArena* pa, ArenaSlab* slab,
                                     int64_t prev_chain_head) {
  tx_acquires_.push_back({pa, slab, prev_chain_head});
}

void ThreadArena::RecordSpill(PuddleArena* pa, ArenaSlab* slab,
                              int64_t prev_chain_head) {
  // The caller already released the slab persistently (staged in its tx).
  // Volatile side: retire it now and scrub its free-list entries so the rest
  // of the transaction cannot allocate from a slab that is leaving.
  slab->retired = true;
  auto& list = pa->free_lists[slab->class_index];
  size_t removed = 0;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const PuddleArena::FreeSlot& e) {
                              if (e.slab == slab) {
                                ++removed;
                                return true;
                              }
                              return false;
                            }),
             list.end());
  free_count_ -= removed;
  tx_spills_.push_back({pa, slab, prev_chain_head});
}

void ThreadArena::OnTxCommitted() {
  tx_pops_.clear();
  tx_claims_.clear();
  tx_acquires_.clear();
  tx_spills_.clear();
  cur_tx_ = nullptr;
}

void ThreadArena::OnTxAborted() {
  // The persistent side has already rolled back (refill/spill metadata was
  // fully logged); mirror it in the volatile state, newest effect first.
  for (auto it = tx_spills_.rbegin(); it != tx_spills_.rend(); ++it) {
    // The slab is arena-owned again. Its entries were scrubbed at spill time
    // (it was whole-empty), so rebuild them, and restore the chain head the
    // persistent unlink rollback re-established.
    it->slab->retired = false;
    for (int slot = 0; slot < it->slab->num_slots; ++slot) {
      it->pa->free_lists[it->slab->class_index].push_back({it->slab, slot});
      free_count_++;
    }
    it->pa->chain_head = it->prev_chain_head;
  }
  for (auto it = tx_pops_.rbegin(); it != tx_pops_.rend(); ++it) {
    if (it->slab->retired) {
      continue;  // Slab acquisition also rolled back below; nothing to restore.
    }
    RestoreSlot(it->pa, it->slab, it->slot, &free_count_);
  }
  for (auto it = tx_acquires_.rbegin(); it != tx_acquires_.rend(); ++it) {
    it->slab->retired = true;
    it->pa->chain_head = it->prev_chain_head;
  }
  // Directory claims rolled back to active=0: the volatile PuddleArena must
  // not keep writing through a slot it no longer owns.
  for (auto it = tx_claims_.rbegin(); it != tx_claims_.rend(); ++it) {
    (*it)->dead = true;
  }
  tx_pops_.clear();
  tx_claims_.clear();
  tx_acquires_.clear();
  tx_spills_.clear();
  cur_tx_ = nullptr;
}

void ThreadArena::AddPendingFree(PuddleArena* pa, ArenaSlab* slab, int slot,
                                 uint64_t epoch) {
  pending_.push_back({pa, slab, slot, epoch});
}

void ThreadArena::DrainPendingFrees(uint64_t retired_epoch) {
  size_t kept = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingFree& entry = pending_[i];
    if (entry.slab->retired || entry.pa->dead) {
      continue;  // The owning acquisition aborted; the slot never existed.
    }
    if (entry.epoch != 0 && entry.epoch > retired_epoch) {
      pending_[kept++] = entry;
      continue;
    }
    ReleaseSlot(entry.pa, entry.slab, entry.slot);
  }
  pending_.resize(kept);
}

bool ThreadArena::AcceptRemoteFree(const Uuid& uuid, uint16_t tag, uint64_t gen,
                                   int64_t slot_offset, uint64_t epoch) {
  for (auto& pa : puddles_) {
    if (pa->dead || pa->tag() != tag || !(pa->uuid == uuid)) {
      continue;
    }
    if (pa->claim_gen != gen) {
      // The record was published under an earlier claim of this (uuid, tag):
      // it must not touch the current claim's slabs. The caller's global-path
      // recheck decides what the offset holds now.
      return false;
    }
    // From here on the claim matches, so the record belongs to this arena.
    // A record the current slab layout cannot resolve — slab gone, slot
    // offset misaligned for the slab's class, slot index out of range — is a
    // stale duplicate (the slot must have been freed already for its slab to
    // have emptied and been re-carved within one claim): consume it inertly
    // rather than let unvalidated arithmetic index past the shadow bitmap.
    const int64_t slab_offset = static_cast<int64_t>(
        AlignDown(static_cast<uint64_t>(slot_offset), kSlabBlockSize));
    ArenaSlab* slab = pa->FindSlab(slab_offset);
    if (slab == nullptr) {
      return true;
    }
    const int64_t within =
        slot_offset - slab_offset - static_cast<int64_t>(sizeof(SlabHeader));
    const int64_t slot_size = static_cast<int64_t>(kSlabSlotSizes[slab->class_index]);
    if (within < 0 || within % slot_size != 0) {
      return true;
    }
    const int slot = static_cast<int>(within / slot_size);
    if (slot >= slab->num_slots) {
      return true;
    }
    if (epoch != 0) {
      AddPendingFree(pa.get(), slab, slot, epoch);
    } else {
      ReleaseSlot(pa.get(), slab, slot);
    }
    return true;
  }
  return false;
}

PuddleArena* ThreadArena::FindPuddleArena(const Uuid& uuid) {
  for (auto& pa : puddles_) {
    if (!pa->dead && pa->uuid == uuid) {
      return pa.get();
    }
  }
  return nullptr;
}

PuddleArena* ThreadArena::AddPuddleArena(const Uuid& uuid, uint8_t* heap_base,
                                         size_t heap_size, int dir_slot) {
  puddles_.push_back(std::make_unique<PuddleArena>());
  PuddleArena* pa = puddles_.back().get();
  pa->uuid = uuid;
  pa->heap_base = heap_base;
  pa->heap_size = heap_size;
  pa->dir_slot = dir_slot;
  return pa;
}

std::vector<PuddleArena*> ThreadArena::LivePuddleArenas() {
  std::vector<PuddleArena*> out;
  for (auto& pa : puddles_) {
    if (!pa->dead) {
      out.push_back(pa.get());
    }
  }
  return out;
}

ArenaSlab* ThreadArena::AddSlab(PuddleArena* pa, int64_t offset, int class_index,
                                uint16_t num_slots, const uint64_t bitmap[2],
                                uint16_t used, int64_t prev_chain_head) {
  pa->slabs.push_back({});
  ArenaSlab* slab = &pa->slabs.back();
  slab->offset = offset;
  slab->shadow[0] = bitmap[0];
  slab->shadow[1] = bitmap[1];
  slab->used = used;
  slab->num_slots = num_slots;
  slab->class_index = static_cast<uint8_t>(class_index);
  for (int slot = 0; slot < num_slots; ++slot) {
    if ((bitmap[slot / 64] & (1ULL << (slot % 64))) == 0) {
      pa->free_lists[class_index].push_back({slab, slot});
      free_count_++;
    }
  }
  RecordSlabAcquired(pa, slab, prev_chain_head);
  PUDDLES_COUNT(kArenaRefillSlabs);
  return slab;
}

bool ThreadArena::HasFreeSlot(int class_index) const {
  for (const auto& pa : puddles_) {
    if (pa->dead) {
      continue;
    }
    for (const auto& entry : pa->free_lists[class_index]) {
      if (!entry.slab->retired) {
        return true;
      }
    }
  }
  return false;
}

void ThreadArena::DropPuddleArena(PuddleArena* pa) {
  for (auto& list : pa->free_lists) {
    free_count_ -= list.size();
    list.clear();
  }
  for (auto& slab : pa->slabs) {
    slab.retired = true;
  }
  pa->chain_head = -1;
  pa->dead = true;
}

void ThreadArena::Adopt(ThreadArena&& other) {
  for (auto& pa : other.puddles_) {
    puddles_.push_back(std::move(pa));
  }
  other.puddles_.clear();
  for (auto& pending : other.pending_) {
    pending_.push_back(pending);
  }
  other.pending_.clear();
  free_count_ += other.free_count_;
  other.free_count_ = 0;
  if (free_count_ >= options_.flush_watermark) {
    spill_hint_ = true;
  }
}

// ---- ArenaManager ----

namespace {

struct TlsEntry {
  ArenaManager* key;
  std::weak_ptr<ArenaManager> manager;
  std::shared_ptr<ThreadArena> arena;
};

// Thread-exit handoff: when a thread dies, every arena it owns is handed to
// its manager's orphan list (if the manager is still alive) so a surviving
// thread can adopt and flush it.
struct TlsArenaMap {
  std::vector<TlsEntry> entries;
  ~TlsArenaMap() {
    for (auto& entry : entries) {
      if (auto manager = entry.manager.lock()) {
        manager->Orphan(std::move(entry.arena));
      }
    }
  }
};

thread_local TlsArenaMap tls_arenas;

}  // namespace

ThreadArena* ArenaManager::Local() {
  auto& entries = tls_arenas.entries;
  for (size_t i = 0; i < entries.size();) {
    auto locked = entries[i].manager.lock();
    if (locked == nullptr) {
      // Manager destroyed; its arenas are unreachable — drop the entry (the
      // raw key may have been reallocated to a new manager).
      entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    if (locked.get() == this) {
      return entries[i].arena.get();
    }
    ++i;
  }
  auto arena = std::make_shared<ThreadArena>(options_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.push_back({arena, false});
  }
  entries.push_back({this, weak_from_this(), arena});
  return arena.get();
}

void ArenaManager::PushRemoteFree(const Uuid& uuid, uint16_t tag, int64_t slot_offset,
                                  uint64_t epoch) {
  PUDDLES_COUNT(kArenaRemoteFree);
  std::lock_guard<std::mutex> lock(mu_);
  remote_.push_back({uuid, tag, ClaimGenLocked(uuid, tag), slot_offset, epoch});
}

void ArenaManager::Requeue(const RemoteFree& rf) {
  std::lock_guard<std::mutex> lock(mu_);
  remote_.push_back(rf);
}

uint64_t ArenaManager::RegisterClaim(const Uuid& uuid, uint16_t tag) {
  std::lock_guard<std::mutex> lock(mu_);
  ++next_gen_;
  for (auto& claim : claims_) {
    if (claim.tag == tag && claim.uuid == uuid) {
      claim.gen = next_gen_;
      return next_gen_;
    }
  }
  claims_.push_back({uuid, tag, next_gen_});
  return next_gen_;
}

uint64_t ArenaManager::ClaimGenOf(const Uuid& uuid, uint16_t tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return ClaimGenLocked(uuid, tag);
}

uint64_t ArenaManager::ClaimGenLocked(const Uuid& uuid, uint16_t tag) const {
  for (const auto& claim : claims_) {
    if (claim.tag == tag && claim.uuid == uuid) {
      return claim.gen;
    }
  }
  return 0;
}

std::vector<ArenaManager::RemoteFree> ArenaManager::DrainRemoteInto(ThreadArena* ta) {
  std::vector<RemoteFree> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued.swap(remote_);
  }
  std::vector<RemoteFree> unowned;
  for (const RemoteFree& rf : queued) {
    if (!ta->AcceptRemoteFree(rf.uuid, rf.tag, rf.gen, rf.slot_offset, rf.epoch)) {
      unowned.push_back(rf);
    }
  }
  return unowned;
}

void ArenaManager::Orphan(std::shared_ptr<ThreadArena> arena) {
  std::lock_guard<std::mutex> lock(mu_);
  MarkOrphaned(arena.get());
  if (arena->puddles_.empty() && arena->pending_.empty()) {
    return;  // Nothing to hand over.
  }
  orphans_.push_back(std::move(arena));
}

void ArenaManager::AdoptOrphansInto(ThreadArena* ta) {
  std::vector<std::shared_ptr<ThreadArena>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(orphans_);
  }
  for (auto& orphan : taken) {
    PUDDLES_COUNT(kArenaOrphanAdopt);
    ta->Adopt(std::move(*orphan));
  }
}

bool ArenaManager::HasOtherLiveArenas(const ThreadArena* exclude) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& reg : registry_) {
    if (reg.orphaned) {
      continue;
    }
    auto locked = reg.arena.lock();
    if (locked != nullptr && locked.get() != exclude) {
      return true;
    }
  }
  return false;
}

size_t ArenaManager::orphan_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return orphans_.size();
}

size_t ArenaManager::queued_remote_frees() {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_.size();
}

void ArenaManager::MarkOrphaned(const ThreadArena* arena) {
  for (auto& reg : registry_) {
    auto locked = reg.arena.lock();
    if (locked.get() == arena) {
      reg.orphaned = true;
    }
  }
}

}  // namespace puddles
