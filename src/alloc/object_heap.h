// Typed object heap: the per-puddle allocator combining the buddy allocator
// (large blocks), the slab allocator (small objects), and 16-byte object
// headers carrying the 64-bit type ID of every allocation (paper §4.5,
// "pool's malloc() API takes as input the object's type in addition to its
// size" and §4.2 "every allocation in Puddles is associated with a type ID,
// stored ... in the allocator's metadata along with the allocated object").
//
// The type IDs plus ForEachObject() are what make pointers discoverable for
// relocation. All state is offset-based and lives in caller-provided PM.
#ifndef SRC_ALLOC_OBJECT_HEAP_H_
#define SRC_ALLOC_OBJECT_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/alloc/arena.h"
#include "src/alloc/buddy.h"
#include "src/alloc/slab.h"
#include "src/common/status.h"
#include "src/common/type_name.h"

namespace puddles {

inline constexpr uint32_t kObjectMagic = 0x504f424a;  // "POBJ"

struct ObjectHeader {
  uint32_t magic;
  uint32_t size;  // Payload bytes requested by the caller.
  TypeId type_id;
};
static_assert(sizeof(ObjectHeader) == 16, "object header must stay 16 bytes");

class ObjectHeap {
 public:
  // Metadata bytes required in the puddle header for a heap of `heap_size`.
  static size_t MetaSize(size_t heap_size);

  static puddles::Status Format(void* meta, void* heap, size_t heap_size);

  static puddles::Result<ObjectHeap> Attach(void* meta, void* heap, size_t heap_size,
                                            LogSink sink = {});

  ObjectHeap() = default;

  void set_log_sink(LogSink sink) {
    sink_ = sink;
    buddy_.set_log_sink(sink);
  }

  // Allocates `payload_size` bytes tagged with `type_id`. Returns the payload
  // address (header sits immediately before it). When a LogSink is installed,
  // all metadata mutations are undo-logged through it; flushing is the
  // transactional caller's job (the commit path flushes undo-logged ranges).
  puddles::Result<void*> Allocate(size_t payload_size, TypeId type_id);

  template <typename T>
  puddles::Result<T*> AllocateTyped(size_t count = 1) {
    ASSIGN_OR_RETURN(void* raw, Allocate(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(raw);
  }

  // Frees the object whose payload starts at `payload`.
  puddles::Status Free(void* payload);

  // Header lookup; returns nullptr if `payload` is not a live allocation.
  const ObjectHeader* HeaderOf(const void* payload) const;

  // True if `payload` points at the start of a live allocation.
  bool IsLiveObject(const void* payload) const;

  // Iterates every live object in address order: fn(payload, header,
  // capacity). `capacity` is the payload space the containing slab slot or
  // buddy block actually provides — callers that walk an object by
  // header.size must bound the walk by it, so a corrupt or inflated size can
  // never send them scanning allocator slack or a neighboring slot.
  void ForEachObject(
      const std::function<void(void*, const ObjectHeader&, size_t)>& fn) const;

  uint64_t free_bytes() const { return buddy_.free_bytes(); }
  size_t heap_size() const { return buddy_.heap_size(); }
  void* heap_base() const { return buddy_.heap(); }

  // ---- Per-thread arena support (src/alloc/arena.h, docs/alloc.md) ----

  // The puddle's persistent arena directory (NVMMgr-style recovery root).
  ArenaDirectory* arena_directory() const { return &meta_->arena_dir; }

  // A slab-allocator view bound to this heap's current sink, for the arena
  // refill/flush primitives (CarveArenaSlab & co).
  SlabAllocator slab_view() const { return Slab(); }

  // The arena tag (SlabHeader::arena_slot) of the slab holding `payload`, or
  // 0 when the object is buddy-backed or its slab is globally owned. Arena
  // frees must bypass Free() below — the slab's persistent bitmap is stale.
  uint16_t ArenaTagOf(const void* payload) const;

  int64_t OffsetOf(const void* addr) const {
    return static_cast<const uint8_t*>(addr) - static_cast<uint8_t*>(buddy_.heap());
  }
  void* AtOffset(int64_t offset) const {
    return static_cast<uint8_t*>(buddy_.heap()) + offset;
  }

  puddles::Status Validate() const;

 private:
  struct Meta {
    uint64_t magic;
    uint64_t heap_size;
    SlabDirectory slab_dir;
    ArenaDirectory arena_dir;
    // BuddyAllocator metadata follows.
  };
  static constexpr uint64_t kMetaMagic = 0x5044484541503241ULL;  // "PDHEAP2A"

  ObjectHeap(Meta* meta, BuddyAllocator buddy, LogSink sink)
      : meta_(meta), buddy_(std::move(buddy)), sink_(sink) {
    buddy_.set_log_sink(sink);
  }

  // The slab allocator is a thin view over (directory, buddy); build it per
  // call so ObjectHeap stays trivially movable.
  SlabAllocator Slab() const {
    return SlabAllocator(&meta_->slab_dir, const_cast<BuddyAllocator*>(&buddy_), sink_);
  }

  bool InHeap(const void* addr) const {
    int64_t off = OffsetOf(addr);
    return off >= 0 && static_cast<size_t>(off) < buddy_.heap_size();
  }

  Meta* meta_ = nullptr;
  BuddyAllocator buddy_;
  LogSink sink_;
};

}  // namespace puddles

#endif  // SRC_ALLOC_OBJECT_HEAP_H_
