#include "src/tx/transaction.h"

#include <cstring>

#include "src/pmem/flush.h"

namespace puddles {
namespace {

thread_local Transaction* tls_transaction = nullptr;

void (*g_stage_hook)(const char* stage) = nullptr;

}  // namespace

void Transaction::SetStageHook(void (*hook)(const char* stage)) { g_stage_hook = hook; }

void Transaction::StageHook(const char* stage) {
  if (g_stage_hook != nullptr) {
    g_stage_hook(stage);
  }
}

Transaction* Transaction::Current() {
  return (tls_transaction != nullptr && tls_transaction->active()) ? tls_transaction : nullptr;
}

namespace tx_internal {

Transaction* ImplicitTransaction() {
  return (tls_transaction != nullptr && tls_transaction->active()) ? tls_transaction : nullptr;
}

}  // namespace tx_internal

void Transaction::AbandonCurrentForTesting() {
  if (tls_transaction != nullptr) {
    tls_transaction->ResetState();
  }
}

puddles::Result<Transaction*> Transaction::BeginWith(const TxTarget* target) {
  if (tls_transaction == nullptr) {
    tls_transaction = new Transaction();  // Thread-lifetime singleton.
  }
  Transaction* tx = tls_transaction;
  if (tx->depth_ > 0) {
    // Flat nesting (PMDK semantics): the inner transaction joins the outer.
    if (target != nullptr && target->log != nullptr && target->log != tx->target_->log) {
      return FailedPreconditionError("nested transaction with a different log");
    }
    ++tx->depth_;
    return tx;
  }
  if (target == nullptr || target->log == nullptr) {
    return InvalidArgumentError("transaction needs a log");
  }
  auto [lo, hi] = target->log->seq_range();
  if (!target->log->empty() || lo != 0 || hi != 2) {
    return FailedPreconditionError("transaction log not empty/armed");
  }
  tx->target_ = target;
  tx->chain_.clear();
  tx->chain_.push_back(target->log);
  tx->depth_ = 1;
  ++tx->epoch_;  // New outermost transaction: invalidate stale Tx handles.
  return tx;
}

puddles::Result<Transaction*> Transaction::Begin(const TxTarget& target) {
  if (tls_transaction != nullptr && tls_transaction->depth_ > 0) {
    return BeginWith(&target);  // Nesting: target identity checked, not stored.
  }
  if (tls_transaction == nullptr) {
    tls_transaction = new Transaction();
  }
  tls_transaction->owned_target_ = target;
  return BeginWith(&tls_transaction->owned_target_);
}

const uint8_t* Transaction::EntryData(const EntryRef& ref) const {
  return static_cast<const uint8_t*>(ref.region->base()) + ref.offset + sizeof(LogEntryHeader);
}

puddles::Status Transaction::AppendEntry(uint64_t addr, const void* data, uint32_t size,
                                         uint32_t seq, ReplayOrder order, uint8_t flags) {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  LogRegion* region = chain_.back();
  puddles::Status status = region->Append(addr, data, size, seq, order, flags);
  if (status.code() == StatusCode::kOutOfMemory) {
    if (!target_->grow) {
      return status;
    }
    // Chain a continuation log puddle (Fig. 5). The link persists before any
    // entry lands in the new region, so recovery can always follow it.
    ASSIGN_OR_RETURN(auto grown, target_->grow());
    auto [new_region, uuid] = grown;
    region->SetNextLog(uuid);
    chain_.push_back(new_region);
    region = new_region;
    status = region->Append(addr, data, size, seq, order, flags);
  }
  RETURN_IF_ERROR(status);
  EntryRef ref;
  ref.region = region;
  ref.offset = region->capacity() - region->free_bytes() - LogRegion::EntrySpan(size);
  ref.addr = addr;
  ref.size = size;
  ref.seq = seq;
  ref.flags = flags;
  entries_.push_back(ref);
  return OkStatus();
}

puddles::Status Transaction::AddUndo(void* addr, size_t size) {
  // Entry sizes are 32-bit on media; a silent truncation here would return
  // OK while logging a fraction (or none) of the range.
  if (size > UINT32_MAX) {
    return InvalidArgumentError("undo range exceeds the 4 GiB log-entry limit");
  }
  return AppendEntry(reinterpret_cast<uint64_t>(addr), addr, static_cast<uint32_t>(size),
                     kUndoSeq, ReplayOrder::kReverse, 0);
}

puddles::Status Transaction::AddVolatileUndo(void* addr, size_t size) {
  if (size > UINT32_MAX) {
    return InvalidArgumentError("undo range exceeds the 4 GiB log-entry limit");
  }
  return AppendEntry(reinterpret_cast<uint64_t>(addr), addr, static_cast<uint32_t>(size),
                     kUndoSeq, ReplayOrder::kReverse, kLogEntryVolatile);
}

puddles::Status Transaction::RedoWrite(void* dst, const void* src, uint32_t size) {
  return AppendEntry(reinterpret_cast<uint64_t>(dst), src, size, kRedoSeq,
                     ReplayOrder::kForward, 0);
}

void Transaction::DeferFree(std::function<puddles::Status()> op) {
  deferred_frees_.push_back(std::move(op));
}

void Transaction::NoteFreshRange(void* addr, size_t size) {
  fresh_ranges_.emplace_back(addr, size);
}

void Transaction::NoteFreedRange(const void* addr, size_t size) {
  freed_ranges_.emplace_back(addr, size);
}

bool Transaction::IntersectsFreedRange(const void* addr, size_t size) const {
  const uintptr_t lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t hi = lo + size;
  for (const auto& [dead, dead_size] : freed_ranges_) {
    const uintptr_t dead_lo = reinterpret_cast<uintptr_t>(dead);
    if (lo < dead_lo + dead_size && dead_lo < hi) {
      return true;
    }
  }
  return false;
}

puddles::Status Transaction::Commit() {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  if (depth_ > 1) {
    --depth_;
    return OkStatus();
  }
  return CommitOutermost();
}

puddles::Status Transaction::CommitOutermost() {
  // Deferred frees run first, while undo logging is live: their metadata
  // mutations become part of this transaction.
  for (auto& op : deferred_frees_) {
    RETURN_IF_ERROR(op());
  }

  LogRegion* head = chain_.front();

  // ---- Stage 1: make every undo-logged location durable (Fig. 7a). ----
  // Undo entries hold the *old* values; the locations now hold new values
  // that must be on PM before redo application starts.
  bool has_redo = false;
  for (const EntryRef& entry : entries_) {
    if (entry.seq == kUndoSeq && (entry.flags & kLogEntryVolatile) == 0) {
      pmem::Flush(reinterpret_cast<void*>(entry.addr), entry.size);
    } else if (entry.seq == kRedoSeq) {
      has_redo = true;
    }
  }
  // Fresh allocations carry no undo entries but their contents are part of
  // the transaction's writes; persist them under the same fence.
  for (const auto& [addr, size] : fresh_ranges_) {
    pmem::Flush(addr, size);
  }
  pmem::Fence();
  StageHook("s1_flushed");

  // Undo-only fast path: with no redo entries, stages 2/3 degenerate — the
  // commit point is the log reset itself (a crash before it rolls back via
  // the still-valid undo entries, which is correct for an uncommitted tx).
  if (!has_redo) {
    head->Reset(0, 2);
    StageHook("reset_done");
    for (size_t i = 1; i < chain_.size(); ++i) {
      if (target_->release) {
        target_->release(chain_[i]);
      }
    }
    ResetState();
    return OkStatus();
  }

  head->SetSeqRange(2, 4);  // Undo replay off, redo replay on.
  StageHook("range_24");

  // ---- Stage 2: apply the redo log (Fig. 7b). ----
  for (const EntryRef& entry : entries_) {
    if (entry.seq != kRedoSeq) {
      continue;
    }
    std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
    if ((entry.flags & kLogEntryVolatile) == 0) {
      pmem::Flush(reinterpret_cast<void*>(entry.addr), entry.size);
    }
    StageHook("redo_applied_one");
  }
  pmem::Fence();
  StageHook("s2_applied");

  head->SetSeqRange(4, 4);  // Nothing replays: the transaction is committed.
  StageHook("s3_marked");

  // ---- Stage 3: drop the log. ----
  head->Reset(0, 2);
  StageHook("reset_done");

  for (size_t i = 1; i < chain_.size(); ++i) {
    if (target_->release) {
      target_->release(chain_[i]);
    }
  }
  ResetState();
  return OkStatus();
}

puddles::Status Transaction::Abort() {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  // Roll back by applying undo entries newest-first; volatile entries are
  // included so DRAM state tracks the PM rollback (§4.1).
  for (size_t i = entries_.size(); i-- > 0;) {
    const EntryRef& entry = entries_[i];
    if (entry.seq != kUndoSeq) {
      continue;  // Redo entries were never applied; nothing to undo.
    }
    std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
    if ((entry.flags & kLogEntryVolatile) == 0) {
      pmem::Flush(reinterpret_cast<void*>(entry.addr), entry.size);
    }
  }
  pmem::Fence();

  chain_.front()->Reset(0, 2);
  for (size_t i = 1; i < chain_.size(); ++i) {
    if (target_->release) {
      target_->release(chain_[i]);
    }
  }
  ResetState();
  return OkStatus();
}

void Transaction::ResetState() {
  entries_.clear();
  fresh_ranges_.clear();
  freed_ranges_.clear();
  deferred_frees_.clear();
  chain_.clear();
  target_ = nullptr;
  depth_ = 0;
}

}  // namespace puddles
