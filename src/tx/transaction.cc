#include "src/tx/transaction.h"

#include <cstring>

#include "src/pmem/flush.h"
#include "src/tx/epoch_port.h"
#include "src/stats/stats.h"
#include "src/stats/trace_ring.h"

namespace puddles {
namespace {

constinit thread_local Transaction* tls_transaction = nullptr;

// Frees the thread's Transaction at thread exit. A separate owner object so
// the fast-path pointer above stays a trivial (wrapper-free) thread_local; if
// a later-destroyed TLS object begins a new transaction after this runs,
// BeginWith simply re-allocates.
struct TransactionOwner {
  ~TransactionOwner() {
    delete tls_transaction;
    tls_transaction = nullptr;
  }
};
thread_local TransactionOwner tls_transaction_owner;

void (*g_stage_hook)(const char* stage) = nullptr;

// True iff [addr, addr+size) lies entirely inside one recorded range.
// Linear scan, like IntersectsFreedRange below: transactions log tens of
// ranges, and even the degenerate case costs pointer compares where the
// pre-batching protocol paid a fence per range. If a workload ever logs
// thousands of distinct ranges per transaction, upgrade both lists to the
// sorted interval-table shape relocation's Translator uses.
bool RangeCovered(const std::vector<std::pair<void*, size_t>>& ranges, const void* addr,
                  size_t size) {
  const uintptr_t lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t hi = lo + size;
  for (const auto& [base, extent] : ranges) {
    const uintptr_t range_lo = reinterpret_cast<uintptr_t>(base);
    if (lo >= range_lo && hi <= range_lo + extent) {
      return true;
    }
  }
  return false;
}

}  // namespace

void Transaction::SetStageHook(void (*hook)(const char* stage)) { g_stage_hook = hook; }

void Transaction::StageHook(const char* stage) {
  if (g_stage_hook != nullptr) {
    g_stage_hook(stage);
  }
}

Transaction* Transaction::Current() {
  return (tls_transaction != nullptr && tls_transaction->active()) ? tls_transaction : nullptr;
}

namespace tx_internal {

Transaction* ImplicitTransaction() {
  return (tls_transaction != nullptr && tls_transaction->active()) ? tls_transaction : nullptr;
}

}  // namespace tx_internal

void Transaction::AbandonCurrentForTesting() {
  if (tls_transaction != nullptr) {
    tls_transaction->ResetState();
  }
}

puddles::Result<Transaction*> Transaction::BeginWith(const TxTarget* target) {
  if (tls_transaction == nullptr) {
    (void)tls_transaction_owner;  // Register the thread-exit deleter.
    tls_transaction = new Transaction();  // Thread-lifetime singleton.
  }
  Transaction* tx = tls_transaction;
  if (tx->depth_ > 0) {
    // Flat nesting (PMDK semantics): the inner transaction joins the outer.
    if (target != nullptr && target->log != nullptr && target->log != tx->target_->log) {
      return FailedPreconditionError("nested transaction with a different log");
    }
    ++tx->depth_;
    return tx;
  }
  if (target == nullptr || target->log == nullptr) {
    return InvalidArgumentError("transaction needs a log");
  }
  auto [lo, hi] = target->log->seq_range();
  if (lo != 0 || hi != 2) {
    return FailedPreconditionError("transaction log not empty/armed");
  }
  tx->chain_.clear();
  tx->chain_.push_back(target->log);
  if (target->epoch != nullptr) {
    // Epoch mode: the log legitimately holds entries from earlier
    // transactions of the open epoch (retirement is deferred to the epoch
    // boundary), so only the armed range is required. JoinTx waits out an
    // unretired previous epoch, rearms if needed, and re-adopts any
    // continuation regions grown earlier in this epoch.
    puddles::Status joined = target->epoch->JoinTx(target->log, &tx->chain_);
    if (!joined.ok()) {
      tx->chain_.clear();
      return joined;
    }
    tx->epoch_mode_ = true;
  } else {
    if (!target->log->empty()) {
      tx->chain_.clear();
      return FailedPreconditionError("transaction log not empty/armed");
    }
    tx->epoch_mode_ = false;
  }
  tx->target_ = target;
  tx->depth_ = 1;
  ++tx->epoch_;  // New outermost transaction: invalidate stale Tx handles.
  PUDDLES_COUNT(kTxBegin);
  return tx;
}

puddles::Result<Transaction*> Transaction::Begin(const TxTarget& target) {
  if (tls_transaction != nullptr && tls_transaction->depth_ > 0) {
    return BeginWith(&target);  // Nesting: target identity checked, not stored.
  }
  if (tls_transaction == nullptr) {
    (void)tls_transaction_owner;  // Register the thread-exit deleter.
    tls_transaction = new Transaction();
  }
  tls_transaction->owned_target_ = target;
  return BeginWith(&tls_transaction->owned_target_);
}

const uint8_t* Transaction::EntryData(const EntryRef& ref) const {
  return static_cast<const uint8_t*>(ref.region->base()) + ref.offset + sizeof(LogEntryHeader);
}

puddles::Status Transaction::AppendEntry(uint64_t addr, const void* data, uint32_t size,
                                         uint32_t seq, ReplayOrder order, uint8_t flags) {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  LogRegion* region = chain_.back();
  puddles::Status status = region->AppendStaged(addr, data, size, seq, order, flags, &batch_);
  if (status.code() == StatusCode::kOutOfMemory) {
    if (!target_->grow) {
      return status;
    }
    // Chain a continuation log puddle (Fig. 5). The link persists before any
    // entry lands in the new region, so recovery can always follow it.
    PUDDLES_COUNT(kLogChain);
    ASSIGN_OR_RETURN(auto grown, target_->grow());
    auto [new_region, uuid] = grown;
    region->SetNextLog(uuid);
    chain_.push_back(new_region);
    region = new_region;
    status = region->AppendStaged(addr, data, size, seq, order, flags, &batch_);
  }
  RETURN_IF_ERROR(status);
  PUDDLES_COUNT_N(kLogBytes, LogRegion::EntrySpan(size));
  EntryRef ref;
  ref.region = region;
  ref.offset = region->capacity() - region->free_bytes() - LogRegion::EntrySpan(size);
  ref.addr = addr;
  ref.size = size;
  ref.seq = seq;
  ref.flags = flags;
  entries_.push_back(ref);
  return OkStatus();
}

puddles::Status Transaction::AddUndoInternal(void* addr, size_t size, bool publish) {
  // Entry sizes are 32-bit on media; a silent truncation here would return
  // OK while logging a fraction (or none) of the range.
  if (size > UINT32_MAX) {
    return InvalidArgumentError("undo range exceeds the 4 GiB log-entry limit");
  }
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  // Coverage elision: no entry (and no fence) when rollback of this range is
  // already guaranteed. A range inside a fresh allocation needs no old-value
  // capture — abort/recovery rolls the allocation itself back and the bytes
  // become unreachable. A range inside an earlier undo capture is restored by
  // that entry; reverse replay applies the earliest (pre-transaction) capture
  // last, so a later overlapping snapshot adds nothing.
  if (RangeCovered(fresh_ranges_, addr, size) ||
      RangeCovered(logged_undo_ranges_, addr, size)) {
    PUDDLES_COUNT(kUndoElided);
    return OkStatus();
  }
  RETURN_IF_ERROR(AppendEntry(reinterpret_cast<uint64_t>(addr), addr,
                              static_cast<uint32_t>(size), kUndoSeq, ReplayOrder::kReverse, 0));
  PUDDLES_COUNT(kUndoAppend);
  logged_undo_ranges_.emplace_back(addr, size);
  if (publish) {
    // Pre-mutation ordering point: the entry (and everything else pending)
    // must be durable before the caller's first store to the range.
    PublishStaged();
  }
  return OkStatus();
}

puddles::Status Transaction::AddUndo(void* addr, size_t size) {
  return AddUndoInternal(addr, size, /*publish=*/true);
}

puddles::Status Transaction::AddUndoDeferred(void* addr, size_t size) {
  return AddUndoInternal(addr, size, /*publish=*/false);
}

void Transaction::PublishStaged() {
  if (batch_.empty()) {
    return;
  }
  if (epoch_mode_) {
    PublishStagedEpoch();
    return;
  }
  PUDDLES_SCOPED_TIMER(kFlushPublishTicks);
  batch_.FlushPending();
  pmem::Fence();
}

// Epoch-mode publication: the staged lines are spliced to the advancer, whose
// flush + single fence retires every waiting thread's publication at once.
// This function (and the whole epoch commit/abort path) must stay free of
// pmem::Flush/Fence calls — CI greps for it (tools/check_epoch_discipline.sh).
void Transaction::PublishStagedEpoch() { target_->epoch->Publish(&batch_); }

puddles::Status Transaction::AddVolatileUndo(void* addr, size_t size) {
  if (size > UINT32_MAX) {
    return InvalidArgumentError("undo range exceeds the 4 GiB log-entry limit");
  }
  RETURN_IF_ERROR(AppendEntry(reinterpret_cast<uint64_t>(addr), addr,
                              static_cast<uint32_t>(size), kUndoSeq, ReplayOrder::kReverse,
                              kLogEntryVolatile));
  PUDDLES_COUNT(kVolatileAppend);
  return OkStatus();
}

puddles::Status Transaction::RedoWrite(void* dst, const void* src, uint32_t size) {
  RETURN_IF_ERROR(AppendEntry(reinterpret_cast<uint64_t>(dst), src, size, kRedoSeq,
                              ReplayOrder::kForward, 0));
  PUDDLES_COUNT(kRedoAppend);
  return OkStatus();
}

void Transaction::DeferFree(std::function<puddles::Status()> op) {
  deferred_frees_.push_back(std::move(op));
}

void Transaction::DeferPostCommit(std::function<void()> fn) {
  post_commit_.push_back(std::move(fn));
}

void Transaction::DeferOnAbort(std::function<void()> fn) {
  on_abort_.push_back(std::move(fn));
}

void Transaction::NoteFreshRange(void* addr, size_t size) {
  fresh_ranges_.emplace_back(addr, size);
}

void Transaction::NoteFreedRange(const void* addr, size_t size) {
  freed_ranges_.emplace_back(addr, size);
}

bool Transaction::IntersectsFreedRange(const void* addr, size_t size) const {
  const uintptr_t lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t hi = lo + size;
  for (const auto& [dead, dead_size] : freed_ranges_) {
    const uintptr_t dead_lo = reinterpret_cast<uintptr_t>(dead);
    if (lo < dead_lo + dead_size && dead_lo < hi) {
      return true;
    }
  }
  return false;
}

puddles::Status Transaction::Commit() {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  if (depth_ > 1) {
    --depth_;
    return OkStatus();
  }
  return CommitOutermost();
}

// Post-commit hooks run only once the outermost commit has fully succeeded:
// they publish volatile effects (arena free-list pushes) that must not happen
// while the transaction can still roll back. Captured at the success exits —
// after the deferred frees have run, so hooks they register are included —
// and dropped on failure (the caller's Abort() runs the on-abort hooks
// instead).
void Transaction::RunPostCommitHooks() {
  std::vector<std::function<void()>> post_commit = std::move(post_commit_);
  post_commit_.clear();
  ResetState();
  for (auto& fn : post_commit) {
    fn();
  }
}

puddles::Status Transaction::CommitOutermost() {
  PUDDLES_TRACE_SPAN("tx_commit");
  PUDDLES_SCOPED_TIMER(kTxCommitTicks);
  PUDDLES_COUNT(kTxCommit);
  // Deferred frees run first, while undo logging is live: their metadata
  // mutations become part of this transaction.
  for (auto& op : deferred_frees_) {
    RETURN_IF_ERROR(op());
  }

  if (epoch_mode_) {
    return CommitEpochMode();
  }

  LogRegion* head = chain_.front();
  bool has_redo = false;
  for (const EntryRef& entry : entries_) {
    if (entry.seq == kRedoSeq) {
      has_redo = true;
      break;
    }
  }

  // ---- Stage 1: one fence makes the pre-commit image durable (Fig. 7a). ----
  // Three kinds of lines share it: staged-but-unpublished appends (redo,
  // volatile, and elided-coverage entries plus their headers — still in
  // batch_), every undo-logged location (whose new value must be on PM before
  // redo application starts; their entries were published pre-mutation), and
  // fresh-allocation contents (no undo entries, but nothing else flushes
  // them). Publishing redo entries here is safe: until the (2,4) flip below
  // they are out of sequence range at replay.
  for (const auto& [addr, size] : logged_undo_ranges_) {
    batch_.Add(addr, size);
  }
  for (const auto& [addr, size] : fresh_ranges_) {
    batch_.Add(addr, size);
  }
  {
    PUDDLES_SCOPED_TIMER(kFlushPublishTicks);
    batch_.FlushPending();
    pmem::Fence();
  }
  StageHook("s1_flushed");

  // Undo-only fast path: with no redo entries, stages 2/3 degenerate — the
  // commit point is the log retirement itself (a crash before it rolls back
  // via the still-valid undo entries, which is correct for an uncommitted
  // tx, and a crash after it finds the new values persisted by stage 1).
  if (!has_redo) {
    RetireLog(head);
    StageHook("reset_done");
    for (size_t i = 1; i < chain_.size(); ++i) {
      if (target_->release) {
        target_->release(chain_[i]);
      }
    }
    RunPostCommitHooks();
    return OkStatus();
  }

  head->SetSeqRange(2, 4);  // Undo replay off, redo replay on.
  StageHook("range_24");

  // ---- Stage 2: apply the redo log (Fig. 7b), one fence. ----
  for (const EntryRef& entry : entries_) {
    if (entry.seq != kRedoSeq) {
      continue;
    }
    std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
    if ((entry.flags & kLogEntryVolatile) == 0) {
      batch_.Add(reinterpret_cast<void*>(entry.addr), entry.size);
    }
    StageHook("redo_applied_one");
  }
  {
    PUDDLES_SCOPED_TIMER(kFlushPublishTicks);
    batch_.FlushPending();
    pmem::Fence();
  }
  StageHook("s2_applied");

  // ---- Stage 3: mark committed and drop the log. ----
  // Common case: the (4,4) flip, clear, and generation bump merge into one
  // header write + fence; reopening the range is the second and final fence.
  // A chained log keeps the general, conservatively-ordered path.
  if (chain_.size() == 1 && head->RetireCommitted()) {
    StageHook("s3_marked");
    head->SetSeqRange(0, 2);
    StageHook("reset_done");
  } else {
    head->SetSeqRange(4, 4);  // Nothing replays: the transaction is committed.
    StageHook("s3_marked");
    head->Reset(0, 2);
    StageHook("reset_done");
  }

  for (size_t i = 1; i < chain_.size(); ++i) {
    if (target_->release) {
      target_->release(chain_[i]);
    }
  }
  RunPostCommitHooks();
  return OkStatus();
}

// Epoch-mode commit (docs/epoch.md): the log is NOT retired — its undo
// entries stay live so a crash before the epoch's retirement record rolls
// back every transaction of the epoch, never a prefix. The commit tail
// (target write-back, log reset, sequence-range flips) is deferred to the
// epoch boundary; this function issues zero flush/fence instructions itself
// (CI-gated by tools/check_epoch_discipline.sh).
puddles::Status Transaction::CommitEpochMode() {
  // Redo entries become in-place mutations below, with the log still armed
  // for undo replay — so each redo target needs a pre-image capture first,
  // or a crash inside the epoch could not roll the mutation back. (Immediate
  // mode avoids the capture by flipping the range to redo replay; epoch mode
  // keeps (0,2) so the dead redo entries are simply out of range at replay.)
  const size_t appended = entries_.size();
  bool has_redo = false;
  for (size_t i = 0; i < appended; ++i) {
    const EntryRef entry = entries_[i];  // Copy: AddUndo below may reallocate.
    if (entry.seq != kRedoSeq || (entry.flags & kLogEntryVolatile) != 0) {
      continue;
    }
    has_redo = true;
    RETURN_IF_ERROR(AddUndoInternal(reinterpret_cast<void*>(entry.addr), entry.size,
                                    /*publish=*/false));
  }

  // One blocking delegated publication covers every staged-but-unpublished
  // append: redo entries, the pre-image captures above, and volatile entries.
  // Publishing even the replay-dead entries matters — an unpublished entry
  // torn by eviction would truncate the recovery walk at its corrupt size
  // field and hide later transactions' undo entries in the same epoch log.
  PublishStaged();

  // Apply the redo log in place; pre-images are durable, so this is
  // crash-safe from here on. Targets only need durability by epoch close.
  if (has_redo) {
    for (size_t i = 0; i < appended; ++i) {
      const EntryRef& entry = entries_[i];
      if (entry.seq != kRedoSeq) {
        continue;
      }
      std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
      if ((entry.flags & kLogEntryVolatile) == 0) {
        batch_.Add(reinterpret_cast<void*>(entry.addr), entry.size);
      }
    }
  }

  // The immediate-mode stage-1 write-back set (new values of undo-logged
  // ranges, fresh-object contents) plus the applied redo targets above are
  // handed to the advancer without blocking: the epoch-close drain flushes
  // them, fences once, and only then writes the retirement record.
  for (const auto& [addr, size] : logged_undo_ranges_) {
    batch_.Add(addr, size);
  }
  for (const auto& [addr, size] : fresh_ranges_) {
    batch_.Add(addr, size);
  }
  target_->epoch->StageDeferred(&batch_);
  target_->epoch->LeaveTx(chain_);
  RunPostCommitHooks();
  return OkStatus();
}

puddles::Status Transaction::Abort() {
  if (!active()) {
    return FailedPreconditionError("no active transaction");
  }
  PUDDLES_COUNT(kTxAbort);
  // On-abort hooks run after the persistent rollback, so they can bring
  // volatile bookkeeping (arena shadow state) back in line with the restored
  // PM image.
  std::vector<std::function<void()>> on_abort = std::move(on_abort_);
  on_abort_.clear();
  puddles::Status status = epoch_mode_ ? AbortEpochMode() : AbortImmediateMode();
  if (status.ok()) {
    for (auto& fn : on_abort) {
      fn();
    }
  }
  return status;
}

puddles::Status Transaction::AbortImmediateMode() {
  // Roll back by applying undo entries newest-first; volatile entries are
  // included so DRAM state tracks the PM rollback (§4.1). Staged entries not
  // yet published are applied too — they live in the mapped log bytes, and
  // their restored targets are batched under the single fence below.
  for (size_t i = entries_.size(); i-- > 0;) {
    const EntryRef& entry = entries_[i];
    if (entry.seq != kUndoSeq) {
      continue;  // Redo entries were never applied; nothing to undo.
    }
    std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
    if ((entry.flags & kLogEntryVolatile) == 0) {
      batch_.Add(reinterpret_cast<void*>(entry.addr), entry.size);
    }
  }
  batch_.FlushPending();
  pmem::Fence();

  RetireLog(chain_.front());
  for (size_t i = 1; i < chain_.size(); ++i) {
    if (target_->release) {
      target_->release(chain_[i]);
    }
  }
  ResetState();
  return OkStatus();
}

// Epoch-mode abort: in-memory rollback only, no flush/fence (CI-gated). The
// log keeps this transaction's (published) undo entries — retiring them here
// would need fences, and replaying them after a crash just re-applies the
// same pre-images restored below, which is idempotent. The restored target
// lines ride to durability with the epoch-close drain; until the epoch
// retires, recovery rolls the whole epoch back anyway.
puddles::Status Transaction::AbortEpochMode() {
  // Unpublished staged appends (redo/volatile entries) are published first
  // for the same torn-walk reason as in CommitEpochMode: a torn entry in the
  // middle of the epoch's log would truncate replay and hide later
  // transactions' undo entries.
  PublishStaged();
  for (size_t i = entries_.size(); i-- > 0;) {
    const EntryRef& entry = entries_[i];
    if (entry.seq != kUndoSeq) {
      continue;  // Redo entries were never applied; nothing to undo.
    }
    std::memcpy(reinterpret_cast<void*>(entry.addr), EntryData(entry), entry.size);
    if ((entry.flags & kLogEntryVolatile) == 0) {
      batch_.Add(reinterpret_cast<void*>(entry.addr), entry.size);
    }
  }
  target_->epoch->StageDeferred(&batch_);
  target_->epoch->LeaveTx(chain_);
  ResetState();
  return OkStatus();
}

// Empties and re-arms the head log after an undo-only commit or an abort
// (range still (0,2)): the one-fence Rearm when the log is unchained, the
// general Reset otherwise.
void Transaction::RetireLog(LogRegion* head) {
  if (chain_.size() == 1 && head->Rearm()) {
    return;
  }
  head->Reset(0, 2);
}

void Transaction::ResetState() {
  entries_.clear();
  // Drop, never flush, still-staged lines: they may point into a log that is
  // about to be unmapped (an abandoned test transaction), and nothing that
  // was not published may linger into the next transaction's batch.
  batch_.Clear();
  fresh_ranges_.clear();
  logged_undo_ranges_.clear();
  freed_ranges_.clear();
  deferred_frees_.clear();
  post_commit_.clear();
  on_abort_.clear();
  chain_.clear();
  target_ = nullptr;
  depth_ = 0;
  epoch_mode_ = false;
}

}  // namespace puddles
