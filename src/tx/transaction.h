// Failure-atomic transactions over Puddles logs (paper §4.1, Figs. 7 & 8).
//
// Thread-local, PMDK-style flat-nested transactions. The runtime writes undo
// entries (TX_ADD) before locations are modified and redo entries
// (TX_REDO_SET) holding deferred new values; commit walks the three hybrid
// stages of Fig. 7, driving the log's sequence range through
// (0,2) → (2,4) → (4,4):
//   Stage 1  flush every undo-logged location            [crash ⇒ roll back]
//   Stage 2  apply + flush every redo entry              [crash ⇒ roll forward]
//   Stage 3  invalidate and reset the log                [crash ⇒ nothing to do]
//
// Persistence is batched (DESIGN.md §10): appends stage their cache lines
// into a per-transaction FlushBatch and publication points — one
// deduplicated write-back pass plus ONE fence — are placed only where
// ordering is actually required: before an undo-logged live range can be
// stored to, and once per commit stage. Redo, volatile, fresh-object, and
// already-covered appends ride along to the next publication for free, so a
// transaction's fence count is bounded by its ordering structure, not by its
// logged-range count. A constant number of fences per transaction is not the
// floor, though: in epoch mode (DESIGN.md §13, docs/epoch.md) publication is
// delegated through TxTarget::epoch to a background advancer whose single
// fence retires every concurrently publishing thread's lines at once, and the
// per-transaction commit tail (stage 1 write-back + log retirement) is
// deferred to the epoch boundary — amortizing fences *across* threads to well
// under one per transaction.
//
// "Puddles' transactions are thread-local ... they support writing to any
// arbitrary PM data and are not limited to a single pool" — the transaction
// only knows its log; targets may live in any mapped puddle.
#ifndef SRC_TX_TRANSACTION_H_
#define SRC_TX_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/pmem/flush.h"
#include "src/tx/log_format.h"

namespace puddles {

class EpochPort;

// Everything a transaction needs from its environment. Pools build one of
// these from the thread's cached log puddle (§4.1: "every thread caches the
// log puddle used on the first transaction of that thread").
struct TxTarget {
  // Head log region; must be formatted and empty with range (0,2).
  LogRegion* log = nullptr;
  // Grows the log with a continuation region when full (Fig. 5). Returns the
  // new region plus its puddle UUID (persisted into the chain link). May be
  // null, in which case a full log aborts the transaction.
  std::function<puddles::Result<std::pair<LogRegion*, Uuid>>()> grow;
  // Returns a grown region after commit/abort (reuse/cleanup). May be null.
  std::function<void(LogRegion*)> release;
  // Non-null selects epoch mode (docs/epoch.md): publication is delegated to
  // the epoch advancer, the log accumulates entries across the epoch's
  // transactions (so it need not be empty at Begin, only armed at (0,2)),
  // and the commit tail is deferred to the epoch boundary.
  EpochPort* epoch = nullptr;
};

// Thrown by stage hooks in crash-injection tests; never thrown in production.
struct SimulatedCrash {
  const char* stage;
};

class Transaction {
 public:
  // The active transaction of this thread, or nullptr.
  //
  // Deprecated: the thread-local singleton is the legacy TX_BEGIN bridge.
  // New code receives its transaction context explicitly — `pool.Run`
  // hands the callback a typed `puddles::Tx` (src/libpuddles/pool.h) and
  // never consults thread-local state. Call sites outside src/tx/ are
  // rejected by the CI api-gate.
  [[deprecated("use pool.Run(fn(Tx&)) — explicit contexts instead of the TLS singleton")]]
  static Transaction* Current();

  // Starts (or flat-nests into) the thread's transaction. The by-reference
  // overload copies the target; BeginWith borrows a caller-owned target that
  // must outlive the transaction (the allocation-free fast path used by
  // Pool::BeginTx with the thread's cached target).
  static puddles::Result<Transaction*> Begin(const TxTarget& target);
  static puddles::Result<Transaction*> BeginWith(const TxTarget* target);

  // Undo-logs [addr, addr+size): the current contents are captured and the
  // caller may modify the range immediately after return (TX_ADD). Under the
  // batched protocol (DESIGN.md §10) this stages the entry and then publishes
  // every pending staged append with ONE fence before returning — the
  // pre-mutation ordering point. The append (and its fence) is elided
  // entirely when the range is already covered: inside a fresh allocation of
  // this transaction (rollback deallocates it; old bytes are meaningless) or
  // inside an earlier undo-logged range (reverse replay restores the earlier,
  // pre-transaction capture last).
  puddles::Status AddUndo(void* addr, size_t size);

  // Deferred-publication variant for runtime-controlled callers (the
  // allocator LogSink): stages the entry without fencing. The caller MUST
  // invoke PublishStaged() before its first store to any range declared this
  // way — declare every range of the mutation group, publish once, then
  // mutate. Misordering is a crash-consistency bug, not a crash.
  puddles::Status AddUndoDeferred(void* addr, size_t size);

  // Publishes all staged-but-unpublished log appends: one deduplicated
  // write-back pass over the touched cache lines plus one fence. No-op when
  // nothing is pending.
  void PublishStaged();

  // Undo-logs a volatile (DRAM) range: restored on abort, ignored by
  // post-crash recovery.
  puddles::Status AddVolatileUndo(void* addr, size_t size);

  // Redo-logs a deferred write: `*dst` keeps its old value until commit
  // stage 2 copies the new bytes in (TX_REDO_SET). Staged without any fence:
  // a redo entry needs no ordering until commit, because its target is not
  // touched before stage 2 and an unpublished entry is invalid at replay
  // (out of sequence range, or torn and discarded by checksum).
  puddles::Status RedoWrite(void* dst, const void* src, uint32_t size);

  template <typename T>
  puddles::Status RedoSet(T* dst, const T& value) {
    return RedoWrite(dst, &value, sizeof(T));
  }

  // Queues an operation (typically an allocator free) to run at the head of
  // commit, while undo logging is still active. Deferring frees to commit
  // keeps freed blocks out of reuse within the transaction, so rollback can
  // never resurrect an object whose bytes were recycled (DESIGN.md §3).
  void DeferFree(std::function<puddles::Status()> op);

  // Registers a volatile side-effect to run once the outermost commit has
  // fully succeeded (after the log is retired / handed to the epoch
  // advancer). Used by the arena allocator to publish unlogged frees: the
  // slot may only re-enter a free list when the freeing transaction can no
  // longer roll back. Dropped if the commit fails (the subsequent Abort runs
  // the on-abort hooks instead). The hook must not throw.
  void DeferPostCommit(std::function<void()> fn);

  // Registers a volatile side-effect to run after a successful Abort() has
  // rolled back all persistent state — the hook restores volatile bookkeeping
  // (arena shadow bitmaps, free lists) to match. The hook must not throw.
  void DeferOnAbort(std::function<void()> fn);

  // Registers a freshly allocated payload range. Fresh objects need no undo
  // data (abort rolls the allocation itself back via the allocator-metadata
  // undo entries), but their contents are plain stores that nothing else
  // flushes — commit stage 1 must persist them, or a committed transaction's
  // new objects hold garbage after a crash (found by crashsim fence-boundary
  // exploration; PMDK's tx_alloc tracks new objects the same way).
  void NoteFreshRange(void* addr, size_t size);

  // Records a payload freed (deferred) in this transaction, so the typed Tx
  // can reject later logging of the dead object (use-after-free inside one
  // transaction). Cleared with the rest of the state at commit/abort.
  void NoteFreedRange(const void* addr, size_t size);
  bool IntersectsFreedRange(const void* addr, size_t size) const;

  // Commits (outermost) or pops one nesting level.
  puddles::Status Commit();

  // Rolls back everything (all nesting levels) via the undo entries, newest
  // first, including volatile entries.
  puddles::Status Abort();

  int depth() const { return depth_; }
  bool active() const { return depth_ > 0; }
  size_t entry_count() const { return entries_.size(); }

  // Monotonic count of outermost Begins served by this thread's transaction
  // object. A typed `Tx` handle captures the epoch at Run-entry so a handle
  // that outlives its transaction is detected (FailedPrecondition) instead of
  // silently joining a later transaction that reuses this object.
  uint64_t epoch() const { return epoch_; }

  // Test-only: invoked at named commit points ("s1_flushed", "s2_applied",
  // "s3_marked", "reset_done"); may throw SimulatedCrash.
  static void SetStageHook(void (*hook)(const char* stage));

  // Drops all in-flight transaction state without touching PM — what process
  // death does. Crash-injection tests call this after SimulateCrash(); real
  // recovery then happens through ReplayLogChain, not through this object.
  static void AbandonCurrentForTesting();

 private:
  struct EntryRef {
    LogRegion* region;
    uint64_t offset;  // Offset of the LogEntryHeader within the region.
    uint64_t addr;
    uint32_t size;
    uint32_t seq;
    uint8_t flags;
  };

  Transaction() = default;

  puddles::Status AppendEntry(uint64_t addr, const void* data, uint32_t size, uint32_t seq,
                              ReplayOrder order, uint8_t flags);
  puddles::Status AddUndoInternal(void* addr, size_t size, bool publish);
  const uint8_t* EntryData(const EntryRef& ref) const;
  puddles::Status CommitOutermost();
  puddles::Status CommitEpochMode();
  puddles::Status AbortImmediateMode();
  puddles::Status AbortEpochMode();
  void RunPostCommitHooks();
  void PublishStagedEpoch();
  void RetireLog(LogRegion* head);
  void ResetState();
  static void StageHook(const char* stage);

  TxTarget owned_target_;            // Storage for the by-value Begin path.
  const TxTarget* target_ = nullptr;  // Active target (owned or borrowed).
  std::vector<LogRegion*> chain_;  // chain_[0] == target_->log.
  std::vector<EntryRef> entries_;  // Append order.
  // Staged-but-unpublished log lines (entries + headers); per-thread because
  // the transaction itself is. Drained by PublishStaged() / commit stage 1.
  pmem::FlushBatch batch_;
  std::vector<std::pair<void*, size_t>> fresh_ranges_;  // Flushed at commit stage 1.
  // Non-volatile undo-logged target ranges, for coverage elision and the
  // stage-1 target write-back.
  std::vector<std::pair<void*, size_t>> logged_undo_ranges_;
  std::vector<std::pair<const void*, size_t>> freed_ranges_;  // Rejected from logging.
  std::vector<std::function<puddles::Status()>> deferred_frees_;
  std::vector<std::function<void()>> post_commit_;  // Run after commit success.
  std::vector<std::function<void()>> on_abort_;     // Run after rollback.
  int depth_ = 0;
  uint64_t epoch_ = 0;
  // True while this outermost transaction runs under an EpochPort (the
  // persistence-epoch sense of "epoch"; unrelated to the handle-staleness
  // counter above).
  bool epoch_mode_ = false;
};

namespace tx_internal {

// The one sanctioned read of the thread-local transaction slot outside the
// Transaction class itself: the bridge that lets the deprecated TX_* macros
// and the implicit-join allocation overloads (`pool.Malloc<T>()` inside
// TX_BEGIN) find the open transaction. Returns nullptr when no transaction
// is active. Everything under src/libpuddles and above threads the
// transaction explicitly; only this legacy bridge — which lives in src/tx by
// design — touches the singleton.
Transaction* ImplicitTransaction();

}  // namespace tx_internal

}  // namespace puddles

#endif  // SRC_TX_TRANSACTION_H_
