// Log space: the directory of a process's crash-consistency logs (Fig. 5).
//
// "Puddles organize logs using a directory, called a log space, that tracks
// all the active crash-consistency logs ... the log space puddle is a list of
// log space entries, each identifying a log puddle that the application is
// using to store a log. For instance, an application might have one log
// puddle per thread." Once registered with Puddled, the application updates
// the log space without further daemon involvement.
#ifndef SRC_TX_LOG_SPACE_H_
#define SRC_TX_LOG_SPACE_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/pmem/flush.h"
#include "src/puddles/format.h"

namespace puddles {

// Format version 2: the header carries the epoch retirement record for
// epoch-based group commit (docs/epoch.md).
inline constexpr uint64_t kLogSpaceMagic = 0x325053474f4c5000ULL;  // "\0PLOGSP2"

struct LogSpaceHeader {
  uint64_t magic;
  uint32_t num_entries;
  uint32_t reserved;
  // Highest persistently retired epoch; 0 = none. Written by the epoch
  // advancer with PersistStore64 AFTER every log entry, header update, and
  // in-place mutation of the epoch is durable — the single commit point for
  // all of the epoch's transactions. Recovery replays a tagged log chain iff
  // its tag is above this watermark (docs/epoch.md).
  uint64_t retired_epoch;
  // LogSpaceEntry[] follows.
};

struct LogSpaceEntry {
  Uuid log_puddle;  // Head of one log chain.
};

class LogSpaceView {
 public:
  static puddles::Status Format(const Puddle& puddle);
  static puddles::Result<LogSpaceView> Attach(const Puddle& puddle);

  LogSpaceView() = default;

  uint32_t num_entries() const { return header_->num_entries; }
  const Uuid& entry(uint32_t i) const { return entries_[i].log_puddle; }
  uint32_t capacity() const { return capacity_; }

  // Registers a new log chain head (crash-safe publish ordering).
  puddles::Status AddLog(const Uuid& log_puddle);

  bool Contains(const Uuid& log_puddle) const;

  // Epoch retirement record (see the header field comment). Retirement is
  // monotone; the store+flush+fence of PersistStore64 makes the new watermark
  // durable before SetRetiredEpoch returns.
  uint64_t retired_epoch() const { return header_->retired_epoch; }
  void SetRetiredEpoch(uint64_t epoch) {
    pmem::PersistStore64(&header_->retired_epoch, epoch);
  }

 private:
  LogSpaceView(LogSpaceHeader* header, LogSpaceEntry* entries, uint32_t capacity)
      : header_(header), entries_(entries), capacity_(capacity) {}

  LogSpaceHeader* header_ = nullptr;
  LogSpaceEntry* entries_ = nullptr;
  uint32_t capacity_ = 0;
};

inline puddles::Status LogSpaceView::Format(const Puddle& puddle) {
  if (puddle.kind() != PuddleKind::kLogSpace) {
    return InvalidArgumentError("log space must live in a kLogSpace puddle");
  }
  auto* header = reinterpret_cast<LogSpaceHeader*>(puddle.heap());
  header->magic = kLogSpaceMagic;
  header->num_entries = 0;
  header->reserved = 0;
  header->retired_epoch = 0;
  pmem::FlushFence(header, sizeof(LogSpaceHeader));
  return OkStatus();
}

inline puddles::Result<LogSpaceView> LogSpaceView::Attach(const Puddle& puddle) {
  if (puddle.kind() != PuddleKind::kLogSpace) {
    return InvalidArgumentError("not a log space puddle");
  }
  auto* header = reinterpret_cast<LogSpaceHeader*>(puddle.heap());
  if (header->magic != kLogSpaceMagic) {
    return DataLossError("log space: bad magic");
  }
  auto* entries = reinterpret_cast<LogSpaceEntry*>(header + 1);
  const uint32_t capacity = static_cast<uint32_t>(
      (puddle.heap_size() - sizeof(LogSpaceHeader)) / sizeof(LogSpaceEntry));
  if (header->num_entries > capacity) {
    return DataLossError("log space: entry count exceeds capacity");
  }
  return LogSpaceView(header, entries, capacity);
}

inline puddles::Status LogSpaceView::AddLog(const Uuid& log_puddle) {
  if (header_->num_entries >= capacity_) {
    return OutOfMemoryError("log space full");
  }
  entries_[header_->num_entries].log_puddle = log_puddle;
  pmem::FlushFence(&entries_[header_->num_entries], sizeof(LogSpaceEntry));
  header_->num_entries++;
  pmem::FlushFence(&header_->num_entries, sizeof(header_->num_entries));
  return OkStatus();
}

inline bool LogSpaceView::Contains(const Uuid& log_puddle) const {
  for (uint32_t i = 0; i < header_->num_entries; ++i) {
    if (entries_[i].log_puddle == log_puddle) {
      return true;
    }
  }
  return false;
}

}  // namespace puddles

#endif  // SRC_TX_LOG_SPACE_H_
