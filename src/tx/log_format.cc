#include "src/tx/log_format.h"

#include <cstring>

#include "src/common/align.h"
#include "src/common/bug_hooks.h"
#include "src/common/checksum.h"
#include "src/pmem/flush.h"

namespace puddles {

size_t LogRegion::EntrySpan(uint32_t size) {
  return AlignUp(sizeof(LogEntryHeader) + size, 8);
}

uint32_t LogRegion::EntryChecksum(const LogEntryHeader& entry, const void* data,
                                  uint32_t generation, uint64_t epoch_tag) {
  // Checksum covers the log generation and epoch tag, everything after the
  // checksum field, then the data. Binding the generation means entries
  // validate only in the log incarnation that wrote them — a slot's stale
  // previous-generation content can never masquerade as a fresh append.
  // Binding the epoch tag hardens the volatile epoch rearm (RearmVolatile):
  // its generation bump and tag store live in different 8-byte pieces of the
  // header, so a crash can land the new tag (defeating the retirement gate)
  // while the durable header still carries the old generation and counts.
  // With the tag in the checksum, the retired epoch's entries are invalid
  // under the new tag no matter which rearm pieces persisted — found by the
  // crashsim epoch workload's eviction-subset exploration.
  if (bug_hooks::torn_append_unbound_checksum.load(std::memory_order_relaxed)) {
    generation = 0;  // Seeded bug (crashsim differential tests): unbound checksum.
  }
  uint32_t crc = Crc32c(&generation, sizeof(generation));
  crc = Crc32c(&epoch_tag, sizeof(epoch_tag), crc);
  crc = Crc32c(reinterpret_cast<const uint8_t*>(&entry) + sizeof(uint32_t),
               sizeof(LogEntryHeader) - sizeof(uint32_t), crc);
  return Crc32c(data, entry.size, crc);
}

puddles::Status LogRegion::Format(void* base, size_t capacity) {
  if (capacity < sizeof(LogHeader) + 64) {
    return InvalidArgumentError("log region too small");
  }
  auto* header = static_cast<LogHeader*>(base);
  std::memset(header, 0, sizeof(LogHeader));
  header->magic = kLogMagic;
  header->seq_lo = 0;
  header->seq_hi = 2;  // Undo entries (seq 1) are live from the first append.
  header->next_free = sizeof(LogHeader);
  header->last_entry = 0;
  header->capacity = capacity;
  header->num_entries = 0;
  header->generation = 1;
  header->next_log = Uuid::Nil();
  header->epoch_tag = 0;  // Immediate mode until an epoch-mode tx tags it.
  pmem::FlushFence(header, sizeof(LogHeader));
  return OkStatus();
}

puddles::Result<LogRegion> LogRegion::Attach(void* base, size_t capacity) {
  auto* header = static_cast<LogHeader*>(base);
  if (header->magic != kLogMagic) {
    return DataLossError("log region: bad magic");
  }
  if (header->capacity != capacity) {
    return DataLossError("log region: capacity mismatch");
  }
  if (header->next_free < sizeof(LogHeader) || header->next_free > capacity) {
    return DataLossError("log region: corrupt next_free");
  }
  return LogRegion(header);
}

puddles::Status LogRegion::AppendStaged(uint64_t addr, const void* data, uint32_t size,
                                        uint32_t seq, ReplayOrder order, uint8_t flags,
                                        pmem::FlushBatch* batch) {
  const size_t span = EntrySpan(size);
  if (header_->next_free + span > header_->capacity) {
    return OutOfMemoryError("log region full");
  }
  const uint64_t offset = header_->next_free;
  auto* bytes = reinterpret_cast<uint8_t*>(header_);
  auto* entry = reinterpret_cast<LogEntryHeader*>(bytes + offset);
  entry->size = size;
  entry->addr = addr;
  entry->seq = seq;
  entry->order = static_cast<uint8_t>(order);
  entry->flags = flags;
  entry->reserved = 0;
  std::memcpy(entry + 1, data, size);
  entry->checksum = EntryChecksum(*entry, data, header_->generation, header_->epoch_tag);
  header_->next_free = offset + span;
  header_->last_entry = offset;
  header_->num_entries++;
  // No persistence here — only staging. Until the batch's publication fence,
  // a crash sees either the old header (staged entries invisible) or, via
  // eviction, a header that admits entries whose bytes are torn — which the
  // generation-bound checksum discards at replay.
  batch->Add(entry, sizeof(LogEntryHeader) + size);
  batch->Add(header_, sizeof(LogHeader));
  return OkStatus();
}

puddles::Status LogRegion::Append(uint64_t addr, const void* data, uint32_t size, uint32_t seq,
                                  ReplayOrder order, uint8_t flags) {
  // Standalone contract: stage, then publish under one fence before
  // returning, so an undo-logging caller may modify the target immediately.
  pmem::FlushBatch batch;
  RETURN_IF_ERROR(AppendStaged(addr, data, size, seq, order, flags, &batch));
  batch.FlushPending();
  pmem::Fence();
  return OkStatus();
}

void LogRegion::SetSeqRange(uint32_t lo, uint32_t hi) {
  header_->seq_lo = lo;
  header_->seq_hi = hi;
  pmem::FlushFence(&header_->seq_lo, sizeof(uint32_t) * 2);
}

void LogRegion::Reset(uint32_t lo, uint32_t hi) {
  // First close the range so no stale entry can be considered valid, then
  // clear allocation state, then open the new range.
  SetSeqRange(hi, hi);
  header_->next_free = sizeof(LogHeader);
  header_->last_entry = 0;
  header_->num_entries = 0;
  // New incarnation: entries the dead transaction left behind (and any stale
  // bytes beyond next_free) can never checksum-validate again. Durable before
  // the range reopens, so no fresh append can race it.
  header_->generation++;
  header_->next_log = Uuid::Nil();
  pmem::FlushFence(header_, sizeof(LogHeader));
  SetSeqRange(lo, hi);
}

bool LogRegion::Rearm() {
  if (header_->seq_lo != 0 || header_->seq_hi != 2 || !header_->next_log.is_nil()) {
    return false;
  }
  header_->next_free = sizeof(LogHeader);
  header_->last_entry = 0;
  header_->num_entries = 0;
  // Partial-durability subsets of this one-line write (8-byte granularity on
  // real PM): {num_entries=0} and {generation+1} each kill every entry;
  // {next_free reset} truncates the walk; the empty set leaves the old
  // entries valid, i.e. a clean pre-commit rollback. No subset can kill only
  // SOME entries, so there is no torn middle ground.
  header_->generation++;
  pmem::FlushFence(header_, sizeof(LogHeader));
  return true;
}

void LogRegion::RearmVolatile() {
  // Plain stores only — see the header comment for why no subset of them
  // needs to be durable once the tagged epoch is retired. This must stay free
  // of pmem::Flush/Fence calls (epoch-discipline CI gate).
  header_->next_free = sizeof(LogHeader);
  header_->last_entry = 0;
  header_->num_entries = 0;
  header_->generation++;
  header_->next_log = Uuid::Nil();
  header_->epoch_tag = 0;
}

bool LogRegion::RetireCommitted() {
  if (!header_->next_log.is_nil()) {
    return false;
  }
  header_->seq_lo = 4;
  header_->seq_hi = 4;
  header_->next_free = sizeof(LogHeader);
  header_->last_entry = 0;
  header_->num_entries = 0;
  header_->generation++;
  pmem::FlushFence(header_, sizeof(LogHeader));
  return true;
}

void LogRegion::SetNextLog(const Uuid& uuid) {
  header_->next_log = uuid;
  pmem::FlushFence(&header_->next_log, sizeof(Uuid));
}

bool LogRegion::IsValid(const LogEntryHeader& entry) const {
  return entry.seq > header_->seq_lo && entry.seq < header_->seq_hi;
}

bool LogRegion::ForEachEntry(const std::function<void(const EntryView&)>& fn) const {
  const auto* bytes = reinterpret_cast<const uint8_t*>(header_);
  uint64_t offset = sizeof(LogHeader);
  for (uint32_t i = 0; i < header_->num_entries; ++i) {
    if (offset + sizeof(LogEntryHeader) > header_->next_free) {
      return false;  // Truncated: header claims more entries than bytes.
    }
    const auto* entry = reinterpret_cast<const LogEntryHeader*>(bytes + offset);
    const size_t span = EntrySpan(entry->size);
    if (offset + span > header_->next_free) {
      return false;  // Corrupt size field.
    }
    EntryView view;
    view.header = entry;
    view.data = reinterpret_cast<const uint8_t*>(entry + 1);
    view.offset = offset;
    view.checksum_ok = EntryChecksum(*entry, view.data, header_->generation,
                                     header_->epoch_tag) == entry->checksum;
    view.valid = view.checksum_ok && IsValid(*entry);
    fn(view);
    offset += span;
  }
  return true;
}

}  // namespace puddles
