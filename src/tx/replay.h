// Log replay — the single implementation used both by the in-process runtime
// (transaction abort) and by Puddled (post-crash, application-independent
// recovery, §4.1). "Regardless of whether an entry is an undo or redo log
// entry, to apply an active log entry, the daemon needs to only copy the
// entry's content to the corresponding memory location."
#ifndef SRC_TX_REPLAY_H_
#define SRC_TX_REPLAY_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/tx/log_format.h"

namespace puddles {

// Resolves a logged target address to a writable location in the replayer's
// address space, or nullptr when the address must not be touched (outside any
// puddle the crashed owner could write — §4.6 access control).
class AddressResolver {
 public:
  virtual ~AddressResolver() = default;
  virtual void* Resolve(uint64_t addr, uint32_t size) = 0;
};

// Identity resolution within [base, base+size): used when the log targets a
// region mapped at its logged address (the common case, since daemon and
// clients share the global puddle space layout).
class RangeResolver : public AddressResolver {
 public:
  RangeResolver(uint64_t base, uint64_t size) : base_(base), size_(size) {}
  void* Resolve(uint64_t addr, uint32_t size) override {
    // Overflow-safe bounds check: a hostile/corrupt log entry with addr near
    // UINT64_MAX must not wrap addr+size around and pass (§4.6 — the daemon
    // replays logs it did not write).
    if (addr < base_ || size > size_ || addr - base_ > size_ - size) {
      return nullptr;
    }
    return reinterpret_cast<void*>(addr);
  }

 private:
  uint64_t base_;
  uint64_t size_;
};

struct ReplayStats {
  uint64_t applied = 0;
  uint64_t skipped_out_of_range = 0;  // Sequence number outside the valid range.
  uint64_t skipped_volatile = 0;
  uint64_t skipped_checksum = 0;
  uint64_t unresolvable = 0;  // Resolver refused the address.
};

struct ReplayOptions {
  // Post-crash recovery (the daemon) skips volatile entries; in-process abort
  // applies them to keep DRAM consistent with PM (§4.1).
  bool include_volatile = false;
  // If true, unresolvable addresses poison the whole log: nothing is applied
  // and an error returns (the daemon marks such logs invalid rather than
  // replaying a possibly-hostile log, §4.6).
  bool fail_on_unresolvable = true;
};

// Replays one log (a chain of regions in link order). Valid reverse-order
// (undo) entries are applied newest-first across the whole chain, then valid
// forward-order (redo) entries oldest-first — exactly the two recovery rolls
// of Fig. 7. Applied locations are flushed; one fence ends the replay.
puddles::Result<ReplayStats> ReplayLogChain(const std::vector<LogRegion>& chain,
                                            AddressResolver& resolver,
                                            const ReplayOptions& options = {});

}  // namespace puddles

#endif  // SRC_TX_REPLAY_H_
