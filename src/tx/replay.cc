#include "src/tx/replay.h"

#include <cstring>

#include "src/pmem/flush.h"

namespace puddles {

puddles::Result<ReplayStats> ReplayLogChain(const std::vector<LogRegion>& chain,
                                            AddressResolver& resolver,
                                            const ReplayOptions& options) {
  ReplayStats stats;

  struct PendingEntry {
    uint64_t addr;
    const uint8_t* data;
    uint32_t size;
    ReplayOrder order;
  };
  std::vector<PendingEntry> reverse_entries;  // Undo-style.
  std::vector<PendingEntry> forward_entries;  // Redo-style.

  if (chain.empty()) {
    return stats;
  }
  // A chained log is *one* log: the head region's sequence range governs
  // validity for every region in the chain (the range is the single word the
  // committer toggles to switch stages atomically).
  const auto [seq_lo, seq_hi] = chain.front().seq_range();

  for (const LogRegion& region : chain) {
    bool intact = region.ForEachEntry([&](const LogRegion::EntryView& view) {
      if (!view.checksum_ok) {
        // Torn append — single or batched (DESIGN.md §10): the entry never
        // finished persisting before the crash. Either way it was by
        // construction never acted upon: an undo entry publishes (fence)
        // before its target's first in-place store, and a redo entry's
        // target is untouched until after the commit flip is durable. Skip.
        ++stats.skipped_checksum;
        return;
      }
      if (!(view.header->seq > seq_lo && view.header->seq < seq_hi)) {
        ++stats.skipped_out_of_range;
        return;
      }
      if ((view.header->flags & kLogEntryVolatile) != 0 && !options.include_volatile) {
        ++stats.skipped_volatile;
        return;
      }
      PendingEntry entry{view.header->addr, view.data, view.header->size,
                         static_cast<ReplayOrder>(view.header->order)};
      if (entry.order == ReplayOrder::kReverse) {
        reverse_entries.push_back(entry);
      } else {
        forward_entries.push_back(entry);
      }
    });
    if (!intact) {
      // A corrupt length field ended iteration early; everything before the
      // corruption was parsed and is safe to use, the tail never persisted.
      break;
    }
  }

  // Resolve everything first so a permission failure can poison the log
  // before any byte is copied.
  auto resolve_all = [&](std::vector<PendingEntry>& entries,
                         std::vector<void*>& targets) -> puddles::Status {
    targets.reserve(entries.size());
    for (const PendingEntry& entry : entries) {
      void* target = resolver.Resolve(entry.addr, entry.size);
      if (target == nullptr) {
        ++stats.unresolvable;
        if (options.fail_on_unresolvable) {
          return PermissionDeniedError("log entry targets unwritable address");
        }
      }
      targets.push_back(target);
    }
    return OkStatus();
  };

  std::vector<void*> reverse_targets;
  std::vector<void*> forward_targets;
  RETURN_IF_ERROR(resolve_all(reverse_entries, reverse_targets));
  RETURN_IF_ERROR(resolve_all(forward_entries, forward_targets));

  // Roll back: undo entries newest-first (Fig. 7 recovery stage 1).
  for (size_t i = reverse_entries.size(); i-- > 0;) {
    if (reverse_targets[i] == nullptr) {
      continue;
    }
    std::memcpy(reverse_targets[i], reverse_entries[i].data, reverse_entries[i].size);
    pmem::Flush(reverse_targets[i], reverse_entries[i].size);
    ++stats.applied;
  }
  // Roll forward: redo entries oldest-first (Fig. 7 recovery stage 2).
  for (size_t i = 0; i < forward_entries.size(); ++i) {
    if (forward_targets[i] == nullptr) {
      continue;
    }
    std::memcpy(forward_targets[i], forward_entries[i].data, forward_entries[i].size);
    pmem::Flush(forward_targets[i], forward_entries[i].size);
    ++stats.applied;
  }
  pmem::Fence();
  return stats;
}

}  // namespace puddles
