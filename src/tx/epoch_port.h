// Per-thread port into the epoch-based group-commit subsystem (docs/epoch.md).
//
// In epoch mode a committing thread never issues flush or fence instructions
// itself. Instead it hands staged cache lines to a background advancer thread
// through this interface:
//
//   * Publish() is the *blocking* handoff — the pre-mutation ordering point
//     of undo logging. The caller's staged log entries (plus header updates)
//     are spliced to the advancer, which flushes them and issues one fence
//     that retires every concurrently waiting thread's publication at once.
//     Only after that fence does Publish return and the caller mutate in
//     place, preserving the "undo entry durable before its target can leak to
//     PM" invariant with far fewer than one fence per transaction.
//   * StageDeferred() is the *non-blocking* handoff for lines that only need
//     durability by epoch close (new values of undo-logged ranges, fresh
//     objects, applied redo targets): the advancer drains them in one pass
//     before persistently retiring the epoch.
//
// The interface lives in src/tx (not src/epoch) so the transaction runtime
// depends only on this abstraction; the concrete implementation (EpochSys) is
// layered above it and injected through TxTarget::epoch.
#ifndef SRC_TX_EPOCH_PORT_H_
#define SRC_TX_EPOCH_PORT_H_

#include <vector>

#include "src/common/status.h"
#include "src/pmem/flush.h"
#include "src/tx/log_format.h"

namespace puddles {

class EpochPort {
 public:
  virtual ~EpochPort() = default;

  // Joins the open epoch at outermost Begin. If the thread's log still holds
  // entries of an earlier, already-closed epoch, blocks until that epoch is
  // persistently retired, then volatile-rearms `head` (and persistently
  // recycles any continuation regions) — so a log never mixes entries from
  // two epochs. Tags `head` with the joined epoch. `chain` arrives seeded
  // with {head}; continuation regions grown by earlier transactions of the
  // same epoch are appended so appends resume at the chain tail.
  virtual puddles::Status JoinTx(LogRegion* head,
                                 std::vector<LogRegion*>* chain) = 0;

  // Blocking delegated publication (see file header). `batch` is left empty.
  virtual void Publish(pmem::FlushBatch* batch) = 0;

  // Non-blocking deferred handoff (see file header). `batch` is left empty.
  virtual void StageDeferred(pmem::FlushBatch* batch) = 0;

  // Ends the transaction's participation in the epoch it joined. `chain` is
  // the transaction's final chain ({head, grown...}); the port carries the
  // grown tail into the epoch's next transaction on this thread.
  virtual void LeaveTx(const std::vector<LogRegion*>& chain) = 0;

  // Waits out and recycles any epoch state still occupying the thread's log
  // (retirement wait + rearm), leaving it empty and untagged — the bridge
  // back to immediate mode, where Begin requires an empty log. No-op when
  // the thread has no pending epoch.
  virtual puddles::Status Quiesce(LogRegion* head) = 0;
};

}  // namespace puddles

#endif  // SRC_TX_EPOCH_PORT_H_
