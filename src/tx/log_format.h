// Puddles' log and log-entry format (paper Fig. 6).
//
// A log lives in the raw heap of a log puddle. Its header carries:
//   * the sequence range — entries are *valid* iff seq_lo < seq < seq_hi,
//     letting the committer atomically enable/disable whole classes of
//     entries (undo seq=1, redo seq=3; Fig. 7 drives the range through
//     (0,2) → (2,4) → (4,4)),
//   * next-free / last-entry pointers for allocation,
//   * an optional link to a continuation log puddle (Fig. 5: "the application
//     [can] link multiple puddles to a log when it runs out of space").
// Each entry records checksum, target address, size, sequence number, replay
// order (undo entries replay in reverse), flags (volatile entries are ignored
// by post-crash recovery), and the data to copy. Applying an entry is always
// a plain memcpy to the address — old data for undo, new data for redo.
//
// Append ordering contract (DESIGN.md §10): the hot path is AppendStaged(),
// which writes the entry and updates the header but persists NOTHING — it only
// stages the touched cache lines into the caller's pmem::FlushBatch. The
// staged batch becomes durable at a publication point: FlushPending() plus one
// pmem::Fence(), issued by the transaction runtime immediately before the
// first in-place store that depends on the batch (or at commit, for entries
// whose targets are never stored in place before commit — redo, volatile, and
// fresh-object entries). Any number of staged appends share that single fence.
// A batch torn by a crash is discarded at replay exactly like a torn single
// append: an entry whose bytes never fully persisted fails its
// generation-bound checksum, and a header update that never persisted leaves
// the staged entries invisible (num_entries/next_free still exclude them).
//
// The legacy Append() wrapper keeps the old one-fence-per-append contract
// (entry + header persisted, fence retired, before it returns) for callers
// without a transaction-scoped batch — baselines, tools, and tests.
#ifndef SRC_TX_LOG_FORMAT_H_
#define SRC_TX_LOG_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/pmem/flush.h"

namespace puddles {

// Format version 3: entry checksums are bound to LogHeader::generation
// (since v2), and the header carries an epoch tag for epoch-based group
// commit (docs/epoch.md). Version-1/2 logs must be rejected at Attach, not
// silently invalidated entry-by-entry at recovery.
inline constexpr uint64_t kLogMagic = 0x33474f4c44555000ULL;  // "\0PUDLOG3"

enum class ReplayOrder : uint8_t {
  kForward = 0,  // Redo semantics: replay in append order.
  kReverse = 1,  // Undo semantics: replay newest-first.
};

enum LogEntryFlags : uint8_t {
  // Target is volatile memory: applied on in-process abort to keep DRAM state
  // consistent with PM, but skipped by post-crash recovery (§4.1).
  kLogEntryVolatile = 1u << 0,
};

// Sequence numbers used by the hybrid commit protocol (Fig. 7).
inline constexpr uint32_t kUndoSeq = 1;
inline constexpr uint32_t kRedoSeq = 3;

struct LogHeader {
  uint64_t magic;
  uint32_t seq_lo;  // Valid entries: seq_lo < seq < seq_hi.
  uint32_t seq_hi;
  uint64_t next_free;   // Offset of the next free byte (starts at sizeof(LogHeader)).
  uint64_t last_entry;  // Offset of the most recently appended entry; 0 = none.
  uint64_t capacity;
  uint32_t num_entries;
  // Bumped by every Reset and mixed into each entry's checksum, so a stale
  // entry from a previous log incarnation can never validate. Without it, a
  // crash that persists an Append's header update (num_entries++) but not the
  // entry bytes resurrects the complete, checksum-valid entry a *previous*
  // transaction left at that offset — found by crashsim eviction-subset
  // exploration (DESIGN.md §3).
  uint32_t generation;
  Uuid next_log;  // Continuation log puddle; nil if none.
  // Epoch-based group commit (docs/epoch.md): 0 in immediate mode; otherwise
  // the persistence epoch whose transactions' entries this log holds. Replay
  // of a tagged log chain is gated on the log space's retirement record — a
  // chain whose head tag is already retired is reset without replay, so a
  // retired epoch's rollback entries can never fire, and a crash inside an
  // unretired epoch rolls back *every* transaction of that epoch. The tag is
  // written volatile and rides to durability with the epoch's first delegated
  // publication (the whole header is staged by every AppendStaged).
  uint64_t epoch_tag;
};

struct LogEntryHeader {
  uint32_t checksum;  // CRC-32C over the fields below plus the data bytes.
  uint32_t size;      // Data bytes.
  uint64_t addr;      // Target virtual address in the global puddle space.
  uint32_t seq;
  uint8_t order;  // ReplayOrder.
  uint8_t flags;
  uint16_t reserved;
  // size bytes of data follow; entries are 8-byte aligned.
};

// View over one log region (a log puddle's heap).
class LogRegion {
 public:
  static puddles::Status Format(void* base, size_t capacity);
  static puddles::Result<LogRegion> Attach(void* base, size_t capacity);

  LogRegion() = default;

  // Appends an entry and persists it (entry bytes + header flushed, one
  // fence) before returning — the legacy standalone contract. Returns
  // kOutOfMemory when the entry does not fit.
  puddles::Status Append(uint64_t addr, const void* data, uint32_t size, uint32_t seq,
                         ReplayOrder order, uint8_t flags = 0);

  // Batched hot path: writes the entry and updates the header in place, but
  // issues NO flush and NO fence — every touched line (entry span + header)
  // is staged into `batch` instead. The append is durable only after the
  // caller runs batch->FlushPending() and fences (see the file header for the
  // publication contract and why a torn batch is safe). This function must
  // stay free of pmem::Flush/Fence calls — CI greps for it.
  puddles::Status AppendStaged(uint64_t addr, const void* data, uint32_t size, uint32_t seq,
                               ReplayOrder order, uint8_t flags, pmem::FlushBatch* batch);

  // Persistently updates the sequence range (flush + fence): the atomic
  // stage-switch primitive of the commit protocol.
  void SetSeqRange(uint32_t lo, uint32_t hi);
  std::pair<uint32_t, uint32_t> seq_range() const {
    return {header_->seq_lo, header_->seq_hi};
  }

  // Empties the log and re-opens the given range, ordered so a crash at any
  // point leaves either the old-but-invalidated or the new-and-empty state.
  // Three ordering points; safe from any starting state.
  void Reset(uint32_t lo, uint32_t hi);

  // One-fence log retirement for the undo-only commit path (DESIGN.md §10):
  // clears allocation state and bumps the generation in a single header
  // write + flush + fence, leaving the (0,2) range open. Callable only when
  // the range is already (0,2) and the log has no continuation — under those
  // preconditions every 8-byte-granular subset of the header update yields
  // either "entries still valid" (clean rollback; the transaction aborts) or
  // "entries all dead" (clean commit; targets were persisted by stage 1).
  // The caller (commit) treats this write as the commit point. Returns false
  // — without touching the header — if the preconditions do not hold, in
  // which case the caller must use the general Reset().
  bool Rearm();

  // One-fence log retirement for the hybrid commit tail: merges the (4,4)
  // "committed" flip with the clear + generation bump into a single header
  // write + flush + fence. Safe because every partial-durability subset of
  // that write either marks the log committed, empties it, or kills every
  // entry's checksum — and post-stage-2 the remaining replay work (redo
  // roll-forward) is idempotent, so "entries still valid under (2,4)" is
  // also consistent. The caller reopens the range afterwards. Returns false
  // — without touching the header — when a continuation log is linked (a
  // partially-persisted chain cut is not crash-atomic); the caller must then
  // use SetSeqRange(4,4) + Reset().
  bool RetireCommitted();

  // Volatile-only log retirement for epoch mode (docs/epoch.md): clears
  // allocation state, bumps the generation, unlinks any continuation, and
  // zeroes the epoch tag with plain stores — NO flush, NO fence. Callable by
  // the owning thread only after the epoch tagged on this log has been
  // persistently retired: from then on the durable header (tag <= retirement
  // record) gates the whole chain out of replay, so it does not matter which
  // of these stores ever reach PM — a crash recovers either the stale gated
  // header (reset without replay) or a later incarnation's published header.
  // Requires the range to be (0,2) — epoch-mode commit never moves it.
  void RearmVolatile();

  // Persistently links a continuation log.
  void SetNextLog(const Uuid& uuid);
  const Uuid& next_log() const { return header_->next_log; }

  // Epoch tag (epoch-based group commit; see the LogHeader field comment).
  // The setter is volatile on purpose: durability rides the next staged
  // append's header publication, which is fenced by the epoch advancer
  // before any of the epoch's in-place mutations can start.
  uint64_t epoch_tag() const { return header_->epoch_tag; }
  void SetEpochTagVolatile(uint64_t tag) { header_->epoch_tag = tag; }

  struct EntryView {
    const LogEntryHeader* header;
    const uint8_t* data;
    uint64_t offset;
    bool valid;          // seq within range and checksum OK.
    bool checksum_ok;
  };

  // Iterates entries in append order; stops early (returning false) if a
  // corrupt length field would walk out of bounds.
  bool ForEachEntry(const std::function<void(const EntryView&)>& fn) const;

  bool IsValid(const LogEntryHeader& entry) const;

  size_t free_bytes() const { return header_->capacity - header_->next_free; }
  uint32_t num_entries() const { return header_->num_entries; }
  bool empty() const { return header_->num_entries == 0; }
  uint64_t capacity() const { return header_->capacity; }
  void* base() const { return header_; }

  // Bytes an entry with `size` data bytes occupies.
  static size_t EntrySpan(uint32_t size);

 private:
  explicit LogRegion(LogHeader* header) : header_(header) {}

  static uint32_t EntryChecksum(const LogEntryHeader& entry, const void* data,
                                uint32_t generation, uint64_t epoch_tag);

  LogHeader* header_ = nullptr;
};

}  // namespace puddles

#endif  // SRC_TX_LOG_FORMAT_H_
