// Legacy PMDK-style transaction macros — deprecated shims over the typed
// transaction-context API (DESIGN.md §9).
//
// New code uses the explicit, Status-returning form (src/libpuddles/pool.h):
//
//   puddles::Status s = pool.Run([&](puddles::Tx& tx) -> puddles::Status {
//     ASSIGN_OR_RETURN(node_t* node, tx.Alloc<node_t>());
//     node->data = val;
//     RETURN_IF_ERROR(tx.LogField(list->tail, &node_t::next));
//     list->tail->next = node;
//     RETURN_IF_ERROR(tx.Set(&list->tail, node));
//     return puddles::OkStatus();
//   });
//
// Commit happens iff the callback returns OK; a non-OK return (or an escaping
// exception) rolls back via the undo log. Nothing is thread-local: the `Tx`
// handle is the only way to reach the transaction, so "logging outside a
// transaction" is unrepresentable instead of a nullptr dereference.
//
// The macros below keep out-of-tree PMDK-era code compiling:
//
//   TX_BEGIN(pool) {
//     node_t* node = pool.Malloc<node_t>();   // joins the open transaction
//     TX_ADD(&list->tail->next);
//     list->tail->next = node;
//     TX_REDO_SET(&list->tail, node);
//   } TX_END;
//
// `pool` is anything with a `BeginTx()` returning Result<Transaction*>. A
// C++ exception escaping the body aborts (rolls back) and rethrows; TxAbort()
// aborts explicitly. Unlike the pre-redesign macros, the shims are hardened:
//   * TX_ADD / TX_ADD_RANGE / TX_REDO_SET outside an open transaction return
//     FailedPrecondition (they used to dereference a null thread-local).
//   * ~TxScope never throws. A commit failure rolls back and is recorded in
//     tx_internal::LastLegacyCommitStatus() for callers that need it.
// Building with -DPUDDLES_STRICT_API poisons the macros entirely.
#ifndef SRC_TX_TX_H_
#define SRC_TX_TX_H_

#include <exception>
#include <stdexcept>

#include "src/tx/transaction.h"

namespace puddles {

// Thrown by TxAbort() to unwind the legacy transaction body.
struct TxAbortRequested {};

inline void TxAbort() { throw TxAbortRequested{}; }

namespace tx_internal {

// The commit status of the most recent TX_END on this thread. ~TxScope is
// noexcept, so a failed commit (which rolls back) surfaces here instead of a
// throw from a destructor.
inline thread_local puddles::Status tls_last_legacy_commit = puddles::OkStatus();

inline const puddles::Status& LastLegacyCommitStatus() { return tls_last_legacy_commit; }

// Null-safe macro targets: resolve the implicit (thread-local) transaction
// and fail cleanly when none is open.
inline puddles::Status LegacyAddUndo(void* addr, size_t size) {
  Transaction* tx = ImplicitTransaction();
  if (tx == nullptr) {
    return FailedPreconditionError("TX_ADD outside an open transaction");
  }
  return tx->AddUndo(addr, size);
}

inline puddles::Status LegacyRedoWrite(void* dst, const void* src, uint32_t size) {
  Transaction* tx = ImplicitTransaction();
  if (tx == nullptr) {
    return FailedPreconditionError("TX_REDO_SET outside an open transaction");
  }
  return tx->RedoWrite(dst, src, size);
}

template <typename T>
puddles::Status LegacyRedoSet(T* dst, const T& value) {
  return LegacyRedoWrite(dst, &value, sizeof(T));
}

// Commits on clean scope exit; aborts when unwinding on an exception. The
// destructor is noexcept: commit failure aborts (undo rollback) and lands in
// LastLegacyCommitStatus() rather than throwing mid-unwind.
class TxScope {
 public:
  explicit TxScope(Transaction* tx) : tx_(tx) {}

  ~TxScope() {
    if (tx_ == nullptr) {
      return;
    }
    if (std::uncaught_exceptions() > exceptions_on_entry_) {
      (void)tx_->Abort();
      // The contract is "status of the most recent TX_END": an unwound
      // (TxAbort or exception) scope must not leave the previous
      // transaction's commit status dangling as if this one committed.
      tls_last_legacy_commit = AbortedError("transaction unwound without commit");
      return;
    }
    puddles::Status status = tx_->Commit();
    if (!status.ok()) {
      (void)tx_->Abort();
    }
    tls_last_legacy_commit = std::move(status);
  }

  TxScope(const TxScope&) = delete;
  TxScope& operator=(const TxScope&) = delete;

 private:
  Transaction* tx_;
  int exceptions_on_entry_ = std::uncaught_exceptions();
};

}  // namespace tx_internal
}  // namespace puddles

#ifdef PUDDLES_STRICT_API

// Strict builds reject the legacy macro surface outright: any expansion is a
// hard compile error naming the replacement.
#pragma GCC poison TX_BEGIN TX_END TX_ADD TX_ADD_RANGE TX_REDO_SET

#else  // !PUDDLES_STRICT_API

#define TX_BEGIN(pool_like)                                                         \
  {                                                                                 \
    auto _puddles_tx_result = (pool_like).BeginTx();                                \
    if (!_puddles_tx_result.ok()) {                                                 \
      throw std::runtime_error("TX_BEGIN failed: " +                                \
                               _puddles_tx_result.status().ToString());             \
    }                                                                               \
    try {                                                                           \
      ::puddles::tx_internal::TxScope _puddles_tx_scope(*_puddles_tx_result);

#define TX_END                                                                      \
    }                                                                               \
    catch (const ::puddles::TxAbortRequested&) { /* rolled back by TxScope */ }     \
  }

// Undo-log `*ptr` (whole object) before modifying it.
#define TX_ADD(ptr)                                                                 \
  (void)::puddles::tx_internal::LegacyAddUndo((void*)(ptr), sizeof(*(ptr)))

// Undo-log an explicit byte range.
#define TX_ADD_RANGE(ptr, size)                                                     \
  (void)::puddles::tx_internal::LegacyAddUndo((void*)(ptr), (size))

// Redo-log `*ptr = value`; the store lands at commit.
#define TX_REDO_SET(ptr, value)                                                     \
  (void)::puddles::tx_internal::LegacyRedoSet((ptr), (value))

#endif  // PUDDLES_STRICT_API

#endif  // SRC_TX_TX_H_
