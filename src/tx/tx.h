// PMDK-style transaction macros (paper Figs. 4 & 8):
//
//   TX_BEGIN(pool) {
//     node_t* node = pool.Malloc<node_t>();
//     node->data = val;
//     TX_ADD(&list->tail->next);
//     list->tail->next = node;
//     TX_REDO_SET(&list->tail, node);
//   } TX_END;
//
// `pool` is anything with a `BeginTx()` returning Result<Transaction*> —
// libpuddles::Pool in production, a test fixture in tests. A C++ exception
// escaping the body aborts the transaction (rolls back via the undo log) and
// rethrows. TxAbort() aborts explicitly.
#ifndef SRC_TX_TX_H_
#define SRC_TX_TX_H_

#include <exception>
#include <stdexcept>

#include "src/tx/transaction.h"

namespace puddles {

// Thrown by TxAbort() to unwind the transaction body.
struct TxAbortRequested {};

inline void TxAbort() { throw TxAbortRequested{}; }

namespace tx_internal {

// Commits on clean scope exit; aborts when unwinding on an exception.
class TxScope {
 public:
  explicit TxScope(Transaction* tx) : tx_(tx) {}

  ~TxScope() noexcept(false) {
    if (tx_ == nullptr) {
      return;
    }
    if (std::uncaught_exceptions() > exceptions_on_entry_) {
      (void)tx_->Abort();
    } else {
      puddles::Status status = tx_->Commit();
      if (!status.ok()) {
        (void)tx_->Abort();
        throw std::runtime_error("transaction commit failed: " + status.ToString());
      }
    }
  }

  TxScope(const TxScope&) = delete;
  TxScope& operator=(const TxScope&) = delete;

 private:
  Transaction* tx_;
  int exceptions_on_entry_ = std::uncaught_exceptions();
};

}  // namespace tx_internal
}  // namespace puddles

#define TX_BEGIN(pool_like)                                                         \
  {                                                                                 \
    auto _puddles_tx_result = (pool_like).BeginTx();                                \
    if (!_puddles_tx_result.ok()) {                                                 \
      throw std::runtime_error("TX_BEGIN failed: " +                                \
                               _puddles_tx_result.status().ToString());             \
    }                                                                               \
    try {                                                                           \
      ::puddles::tx_internal::TxScope _puddles_tx_scope(*_puddles_tx_result);

#define TX_END                                                                      \
    }                                                                               \
    catch (const ::puddles::TxAbortRequested&) { /* rolled back by TxScope */ }     \
  }

// Undo-log `*ptr` (whole object) before modifying it.
#define TX_ADD(ptr)                                                                 \
  (void)::puddles::Transaction::Current()->AddUndo((void*)(ptr), sizeof(*(ptr)))

// Undo-log an explicit byte range.
#define TX_ADD_RANGE(ptr, size)                                                     \
  (void)::puddles::Transaction::Current()->AddUndo((void*)(ptr), (size))

// Redo-log `*ptr = value`; the store lands at commit.
#define TX_REDO_SET(ptr, value)                                                     \
  (void)::puddles::Transaction::Current()->RedoSet((ptr), (value))

#endif  // SRC_TX_TX_H_
