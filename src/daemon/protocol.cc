#include "src/daemon/protocol.h"

#include <cstdio>
#include <cstring>

#include "src/stats/stats.h"
#include "src/stats/trace_ring.h"

namespace puddled {

using puddles::WireReader;
using puddles::WireWriter;

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kCreatePuddle:
      return "create_puddle";
    case Op::kGetPuddle:
      return "get_puddle";
    case Op::kStatPuddle:
      return "stat_puddle";
    case Op::kFindByAddr:
      return "find_by_addr";
    case Op::kDeletePuddle:
      return "delete_puddle";
    case Op::kCreatePool:
      return "create_pool";
    case Op::kOpenPool:
      return "open_pool";
    case Op::kRegisterLogSpace:
      return "register_log_space";
    case Op::kRegisterPtrMap:
      return "register_ptr_map";
    case Op::kGetPtrMap:
      return "get_ptr_map";
    case Op::kCompleteRewrite:
      return "complete_rewrite";
    case Op::kExportPool:
      return "export_pool";
    case Op::kImportPool:
      return "import_pool";
    case Op::kStats:
      return "stats";
  }
  return "unknown";
}

void EncodePuddleInfo(WireWriter* writer, const PuddleInfo& info) {
  writer->PutUuid(info.uuid);
  writer->PutUuid(info.pool_uuid);
  writer->PutU32(info.kind);
  writer->PutU64(info.base_addr);
  writer->PutU64(info.file_size);
  writer->PutU64(info.heap_size);
  writer->PutU64(info.prev_base);
  writer->PutU32(info.flags);
}

puddles::Status DecodePuddleInfo(WireReader* reader, PuddleInfo* info) {
  RETURN_IF_ERROR(reader->GetUuid(&info->uuid));
  RETURN_IF_ERROR(reader->GetUuid(&info->pool_uuid));
  RETURN_IF_ERROR(reader->GetU32(&info->kind));
  RETURN_IF_ERROR(reader->GetU64(&info->base_addr));
  RETURN_IF_ERROR(reader->GetU64(&info->file_size));
  RETURN_IF_ERROR(reader->GetU64(&info->heap_size));
  RETURN_IF_ERROR(reader->GetU64(&info->prev_base));
  return reader->GetU32(&info->flags);
}

void EncodePoolInfo(WireWriter* writer, const PoolInfo& info) {
  writer->PutUuid(info.pool_uuid);
  writer->PutUuid(info.meta_puddle);
  writer->PutString(info.name);
}

puddles::Status DecodePoolInfo(WireReader* reader, PoolInfo* info) {
  RETURN_IF_ERROR(reader->GetUuid(&info->pool_uuid));
  RETURN_IF_ERROR(reader->GetUuid(&info->meta_puddle));
  std::string name;
  RETURN_IF_ERROR(reader->GetString(&name));
  std::memset(info->name, 0, sizeof(info->name));
  std::strncpy(info->name, name.c_str(), sizeof(info->name) - 1);
  return puddles::OkStatus();
}

void EncodePtrMap(WireWriter* writer, const PtrMapRecord& record) {
  writer->PutBytes(&record, sizeof(record));
}

puddles::Status DecodePtrMap(WireReader* reader, PtrMapRecord* record) {
  std::vector<uint8_t> blob;
  RETURN_IF_ERROR(reader->GetBytes(&blob));
  if (blob.size() != sizeof(PtrMapRecord)) {
    return puddles::DataLossError("pointer map blob size mismatch");
  }
  std::memcpy(record, blob.data(), sizeof(PtrMapRecord));
  return puddles::OkStatus();
}

void EncodeImportResult(WireWriter* writer, const ImportResult& result) {
  EncodePoolInfo(writer, result.pool);
  writer->PutU32(result.members_imported);
  writer->PutU32(result.members_relocated);
}

puddles::Status DecodeImportResult(WireReader* reader, ImportResult* result) {
  RETURN_IF_ERROR(DecodePoolInfo(reader, &result->pool));
  RETURN_IF_ERROR(reader->GetU32(&result->members_imported));
  return reader->GetU32(&result->members_relocated);
}

StatsReport BuildStatsReport() {
  namespace stats = puddles::stats;
  const stats::Snapshot snap = stats::Aggregate();
  StatsReport report;
  report.live_threads = snap.live_threads;
  report.retired_threads = snap.retired_threads;
  report.counters.reserve(stats::kNumCounters);
  for (size_t i = 0; i < stats::kNumCounters; ++i) {
    report.counters.emplace_back(stats::CounterName(static_cast<stats::Counter>(i)),
                                 snap.counters[i]);
  }
  for (size_t i = 0; i < stats::kMaxDaemonOps; ++i) {
    if (snap.daemon_ops[i] == 0) {
      continue;
    }
    const char* name = OpName(static_cast<Op>(i));
    if (std::strcmp(name, "unknown") == 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "op_%zu", i);
      report.daemon_ops.emplace_back(buf, snap.daemon_ops[i]);
    } else {
      report.daemon_ops.emplace_back(name, snap.daemon_ops[i]);
    }
  }
  report.hists.reserve(stats::kNumHists);
  for (size_t i = 0; i < stats::kNumHists; ++i) {
    const stats::Histogram& hist = snap.hists[i];
    StatsHistRow row;
    row.name = stats::HistName(static_cast<stats::Hist>(i));
    row.count = hist.count();
    row.sum_ns = stats::TicksToNanos(hist.sum());
    row.p50_ns = stats::TicksToNanos(hist.p50());
    row.p90_ns = stats::TicksToNanos(hist.p90());
    row.p99_ns = stats::TicksToNanos(hist.p99());
    row.p999_ns = stats::TicksToNanos(hist.p999());
    row.max_ns = stats::TicksToNanos(hist.max());
    report.hists.push_back(std::move(row));
  }
  return report;
}

void EncodeStatsReport(WireWriter* writer, const StatsReport& report) {
  writer->PutU64(report.live_threads);
  writer->PutU64(report.retired_threads);
  writer->PutU32(static_cast<uint32_t>(report.counters.size()));
  for (const auto& [name, value] : report.counters) {
    writer->PutString(name);
    writer->PutU64(value);
  }
  writer->PutU32(static_cast<uint32_t>(report.daemon_ops.size()));
  for (const auto& [name, value] : report.daemon_ops) {
    writer->PutString(name);
    writer->PutU64(value);
  }
  writer->PutU32(static_cast<uint32_t>(report.hists.size()));
  for (const StatsHistRow& row : report.hists) {
    writer->PutString(row.name);
    writer->PutU64(row.count);
    writer->PutU64(row.sum_ns);
    writer->PutU64(row.p50_ns);
    writer->PutU64(row.p90_ns);
    writer->PutU64(row.p99_ns);
    writer->PutU64(row.p999_ns);
    writer->PutU64(row.max_ns);
  }
}

puddles::Status DecodeStatsReport(WireReader* reader, StatsReport* report) {
  report->counters.clear();
  report->daemon_ops.clear();
  report->hists.clear();
  RETURN_IF_ERROR(reader->GetU64(&report->live_threads));
  RETURN_IF_ERROR(reader->GetU64(&report->retired_threads));
  uint32_t n = 0;
  RETURN_IF_ERROR(reader->GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value;
    RETURN_IF_ERROR(reader->GetString(&name));
    RETURN_IF_ERROR(reader->GetU64(&value));
    report->counters.emplace_back(std::move(name), value);
  }
  RETURN_IF_ERROR(reader->GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value;
    RETURN_IF_ERROR(reader->GetString(&name));
    RETURN_IF_ERROR(reader->GetU64(&value));
    report->daemon_ops.emplace_back(std::move(name), value);
  }
  RETURN_IF_ERROR(reader->GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    StatsHistRow row;
    RETURN_IF_ERROR(reader->GetString(&row.name));
    RETURN_IF_ERROR(reader->GetU64(&row.count));
    RETURN_IF_ERROR(reader->GetU64(&row.sum_ns));
    RETURN_IF_ERROR(reader->GetU64(&row.p50_ns));
    RETURN_IF_ERROR(reader->GetU64(&row.p90_ns));
    RETURN_IF_ERROR(reader->GetU64(&row.p99_ns));
    RETURN_IF_ERROR(reader->GetU64(&row.p999_ns));
    RETURN_IF_ERROR(reader->GetU64(&row.max_ns));
    report->hists.push_back(std::move(row));
  }
  return puddles::OkStatus();
}

namespace {

// Builds an error-only response.
std::vector<uint8_t> ErrorResponse(const puddles::Status& status) {
  WireWriter writer;
  writer.PutStatus(status);
  return writer.Take();
}

}  // namespace

DispatchResult DispatchRequest(Daemon& daemon, const Credentials& creds,
                               const std::vector<uint8_t>& request) {
  DispatchResult out;
  WireReader reader(request);
  uint32_t op_raw;
  if (puddles::Status s = reader.GetU32(&op_raw); !s.ok()) {
    out.response = ErrorResponse(s);
    return out;
  }
  PUDDLES_TRACE_SPAN("daemon_request");
  PUDDLES_SCOPED_TIMER(kDaemonServiceTicks);
  PUDDLES_COUNT(kDaemonRequest);
  PUDDLES_COUNT_DAEMON_OP(op_raw);
  WireWriter writer;

  switch (static_cast<Op>(op_raw)) {
    case Op::kPing: {
      writer.PutStatus(puddles::OkStatus());
      break;
    }
    case Op::kCreatePuddle: {
      uint32_t kind;
      uint64_t heap_size;
      Uuid pool_uuid;
      uint32_t mode;
      puddles::Status s = reader.GetU32(&kind);
      if (s.ok()) s = reader.GetU64(&heap_size);
      if (s.ok()) s = reader.GetUuid(&pool_uuid);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.CreatePuddle(static_cast<PuddleKind>(kind), heap_size, creds,
                                        pool_uuid, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, result->first);
        out.fd = result->second;
      }
      break;
    }
    case Op::kGetPuddle: {
      Uuid uuid;
      uint8_t write;
      puddles::Status s = reader.GetUuid(&uuid);
      if (s.ok()) s = reader.GetU8(&write);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.GetPuddle(uuid, creds, write != 0);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, result->first);
        out.fd = result->second;
      }
      break;
    }
    case Op::kStatPuddle: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.StatPuddle(uuid, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, *result);
      }
      break;
    }
    case Op::kFindByAddr: {
      uint64_t addr;
      if (puddles::Status s = reader.GetU64(&addr); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.FindPuddleByAddr(addr, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, *result);
      }
      break;
    }
    case Op::kDeletePuddle: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.DeletePuddle(uuid, creds));
      break;
    }
    case Op::kCreatePool: {
      std::string name;
      uint32_t mode;
      puddles::Status s = reader.GetString(&name);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.CreatePool(name, creds, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePoolInfo(&writer, *result);
      }
      break;
    }
    case Op::kOpenPool: {
      std::string name;
      if (puddles::Status s = reader.GetString(&name); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.OpenPool(name, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePoolInfo(&writer, *result);
      }
      break;
    }
    case Op::kRegisterLogSpace: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.RegisterLogSpace(uuid, creds));
      break;
    }
    case Op::kRegisterPtrMap: {
      PtrMapRecord record;
      if (puddles::Status s = DecodePtrMap(&reader, &record); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.RegisterPtrMap(record));
      break;
    }
    case Op::kGetPtrMap: {
      uint64_t type_id;
      if (puddles::Status s = reader.GetU64(&type_id); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.GetPtrMap(type_id);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePtrMap(&writer, *result);
      }
      break;
    }
    case Op::kCompleteRewrite: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.CompleteRewrite(uuid, creds));
      break;
    }
    case Op::kExportPool: {
      std::string name, dest;
      puddles::Status s = reader.GetString(&name);
      if (s.ok()) s = reader.GetString(&dest);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.ExportPool(name, dest, creds));
      break;
    }
    case Op::kImportPool: {
      std::string src, name;
      uint32_t mode;
      puddles::Status s = reader.GetString(&src);
      if (s.ok()) s = reader.GetString(&name);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.ImportPool(src, name, creds, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodeImportResult(&writer, *result);
      }
      break;
    }
    case Op::kStats: {
      // The bumps above run before the snapshot, so a STATS round trip always
      // observes itself — a live daemon never reports all-zero counters.
      writer.PutStatus(puddles::OkStatus());
      EncodeStatsReport(&writer, BuildStatsReport());
      break;
    }
    default:
      writer.PutStatus(puddles::InvalidArgumentError("unknown op"));
      break;
  }
  out.response = writer.Take();
  return out;
}

}  // namespace puddled
