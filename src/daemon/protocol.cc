#include "src/daemon/protocol.h"

#include <cstring>

namespace puddled {

using puddles::WireReader;
using puddles::WireWriter;

void EncodePuddleInfo(WireWriter* writer, const PuddleInfo& info) {
  writer->PutUuid(info.uuid);
  writer->PutUuid(info.pool_uuid);
  writer->PutU32(info.kind);
  writer->PutU64(info.base_addr);
  writer->PutU64(info.file_size);
  writer->PutU64(info.heap_size);
  writer->PutU64(info.prev_base);
  writer->PutU32(info.flags);
}

puddles::Status DecodePuddleInfo(WireReader* reader, PuddleInfo* info) {
  RETURN_IF_ERROR(reader->GetUuid(&info->uuid));
  RETURN_IF_ERROR(reader->GetUuid(&info->pool_uuid));
  RETURN_IF_ERROR(reader->GetU32(&info->kind));
  RETURN_IF_ERROR(reader->GetU64(&info->base_addr));
  RETURN_IF_ERROR(reader->GetU64(&info->file_size));
  RETURN_IF_ERROR(reader->GetU64(&info->heap_size));
  RETURN_IF_ERROR(reader->GetU64(&info->prev_base));
  return reader->GetU32(&info->flags);
}

void EncodePoolInfo(WireWriter* writer, const PoolInfo& info) {
  writer->PutUuid(info.pool_uuid);
  writer->PutUuid(info.meta_puddle);
  writer->PutString(info.name);
}

puddles::Status DecodePoolInfo(WireReader* reader, PoolInfo* info) {
  RETURN_IF_ERROR(reader->GetUuid(&info->pool_uuid));
  RETURN_IF_ERROR(reader->GetUuid(&info->meta_puddle));
  std::string name;
  RETURN_IF_ERROR(reader->GetString(&name));
  std::memset(info->name, 0, sizeof(info->name));
  std::strncpy(info->name, name.c_str(), sizeof(info->name) - 1);
  return puddles::OkStatus();
}

void EncodePtrMap(WireWriter* writer, const PtrMapRecord& record) {
  writer->PutBytes(&record, sizeof(record));
}

puddles::Status DecodePtrMap(WireReader* reader, PtrMapRecord* record) {
  std::vector<uint8_t> blob;
  RETURN_IF_ERROR(reader->GetBytes(&blob));
  if (blob.size() != sizeof(PtrMapRecord)) {
    return puddles::DataLossError("pointer map blob size mismatch");
  }
  std::memcpy(record, blob.data(), sizeof(PtrMapRecord));
  return puddles::OkStatus();
}

void EncodeImportResult(WireWriter* writer, const ImportResult& result) {
  EncodePoolInfo(writer, result.pool);
  writer->PutU32(result.members_imported);
  writer->PutU32(result.members_relocated);
}

puddles::Status DecodeImportResult(WireReader* reader, ImportResult* result) {
  RETURN_IF_ERROR(DecodePoolInfo(reader, &result->pool));
  RETURN_IF_ERROR(reader->GetU32(&result->members_imported));
  return reader->GetU32(&result->members_relocated);
}

namespace {

// Builds an error-only response.
std::vector<uint8_t> ErrorResponse(const puddles::Status& status) {
  WireWriter writer;
  writer.PutStatus(status);
  return writer.Take();
}

}  // namespace

DispatchResult DispatchRequest(Daemon& daemon, const Credentials& creds,
                               const std::vector<uint8_t>& request) {
  DispatchResult out;
  WireReader reader(request);
  uint32_t op_raw;
  if (puddles::Status s = reader.GetU32(&op_raw); !s.ok()) {
    out.response = ErrorResponse(s);
    return out;
  }
  WireWriter writer;

  switch (static_cast<Op>(op_raw)) {
    case Op::kPing: {
      writer.PutStatus(puddles::OkStatus());
      break;
    }
    case Op::kCreatePuddle: {
      uint32_t kind;
      uint64_t heap_size;
      Uuid pool_uuid;
      uint32_t mode;
      puddles::Status s = reader.GetU32(&kind);
      if (s.ok()) s = reader.GetU64(&heap_size);
      if (s.ok()) s = reader.GetUuid(&pool_uuid);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.CreatePuddle(static_cast<PuddleKind>(kind), heap_size, creds,
                                        pool_uuid, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, result->first);
        out.fd = result->second;
      }
      break;
    }
    case Op::kGetPuddle: {
      Uuid uuid;
      uint8_t write;
      puddles::Status s = reader.GetUuid(&uuid);
      if (s.ok()) s = reader.GetU8(&write);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.GetPuddle(uuid, creds, write != 0);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, result->first);
        out.fd = result->second;
      }
      break;
    }
    case Op::kStatPuddle: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.StatPuddle(uuid, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, *result);
      }
      break;
    }
    case Op::kFindByAddr: {
      uint64_t addr;
      if (puddles::Status s = reader.GetU64(&addr); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.FindPuddleByAddr(addr, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePuddleInfo(&writer, *result);
      }
      break;
    }
    case Op::kDeletePuddle: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.DeletePuddle(uuid, creds));
      break;
    }
    case Op::kCreatePool: {
      std::string name;
      uint32_t mode;
      puddles::Status s = reader.GetString(&name);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.CreatePool(name, creds, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePoolInfo(&writer, *result);
      }
      break;
    }
    case Op::kOpenPool: {
      std::string name;
      if (puddles::Status s = reader.GetString(&name); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.OpenPool(name, creds);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePoolInfo(&writer, *result);
      }
      break;
    }
    case Op::kRegisterLogSpace: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.RegisterLogSpace(uuid, creds));
      break;
    }
    case Op::kRegisterPtrMap: {
      PtrMapRecord record;
      if (puddles::Status s = DecodePtrMap(&reader, &record); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.RegisterPtrMap(record));
      break;
    }
    case Op::kGetPtrMap: {
      uint64_t type_id;
      if (puddles::Status s = reader.GetU64(&type_id); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.GetPtrMap(type_id);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodePtrMap(&writer, *result);
      }
      break;
    }
    case Op::kCompleteRewrite: {
      Uuid uuid;
      if (puddles::Status s = reader.GetUuid(&uuid); !s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.CompleteRewrite(uuid, creds));
      break;
    }
    case Op::kExportPool: {
      std::string name, dest;
      puddles::Status s = reader.GetString(&name);
      if (s.ok()) s = reader.GetString(&dest);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      writer.PutStatus(daemon.ExportPool(name, dest, creds));
      break;
    }
    case Op::kImportPool: {
      std::string src, name;
      uint32_t mode;
      puddles::Status s = reader.GetString(&src);
      if (s.ok()) s = reader.GetString(&name);
      if (s.ok()) s = reader.GetU32(&mode);
      if (!s.ok()) {
        out.response = ErrorResponse(s);
        return out;
      }
      auto result = daemon.ImportPool(src, name, creds, mode);
      writer.PutStatus(result.status());
      if (result.ok()) {
        EncodeImportResult(&writer, *result);
      }
      break;
    }
    default:
      writer.PutStatus(puddles::InvalidArgumentError("unknown op"));
      break;
  }
  out.response = writer.Take();
  return out;
}

}  // namespace puddled
