#include "src/daemon/daemon.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/log.h"
#include "src/ipc/wire.h"
#include "src/pmem/global_space.h"
#include "src/puddles/pool_meta.h"
#include "src/tx/log_format.h"
#include "src/tx/log_space.h"
#include "src/tx/replay.h"

namespace puddled {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kManifestMagic = 0x5444504d414e4946ULL;  // "FINAMPDT"

uint64_t NameKey(const std::string& name) {
  return puddles::Fnv1a64(name.data(), name.size());
}

// Creates-or-opens one registry table file.
template <typename Table>
puddles::Status OpenTable(const std::string& path, uint64_t slots, pmem::PmemFile* file,
                          std::unique_ptr<Table>* table) {
  const size_t bytes = puddles::AlignUp(Table::RequiredBytes(slots), puddles::kPageSize);
  bool fresh = !fs::exists(path);
  if (fresh) {
    ASSIGN_OR_RETURN(*file, pmem::PmemFile::Create(path, bytes));
  } else {
    ASSIGN_OR_RETURN(*file, pmem::PmemFile::Open(path));
  }
  ASSIGN_OR_RETURN(void* base, file->Map());
  if (fresh) {
    RETURN_IF_ERROR(Table::Format(base, file->size(), slots));
  }
  auto attached = Table::Attach(base, file->size());
  RETURN_IF_ERROR(attached.status());
  *table = std::make_unique<Table>(std::move(*attached));
  return puddles::OkStatus();
}

}  // namespace

Credentials Credentials::Self() {
  Credentials creds;
  creds.uid = ::geteuid();
  creds.gid = ::getegid();
  return creds;
}

Daemon::~Daemon() = default;

puddles::Result<std::unique_ptr<Daemon>> Daemon::Start(const Options& options) {
  if (options.root_dir.empty()) {
    return puddles::InvalidArgumentError("daemon needs a root directory");
  }
  if (options.shards == 0 || !puddles::IsPowerOfTwo(options.shards)) {
    return puddles::InvalidArgumentError("daemon shard count must be a power of two");
  }
  if (options.puddle_table_slots % options.shards != 0 ||
      options.ptrmap_table_slots % options.shards != 0) {
    return puddles::InvalidArgumentError("table slots must divide evenly across shards");
  }
  std::unique_ptr<Daemon> daemon(new Daemon(options));
  RETURN_IF_ERROR(daemon->Initialize());
  if (options.run_recovery) {
    auto report = daemon->RunRecovery();
    RETURN_IF_ERROR(report.status());
    if (report->entries_applied > 0 || report->logs_marked_invalid > 0) {
      PUD_LOG_INFO("recovery: %llu entries applied, %llu logs invalidated",
                   static_cast<unsigned long long>(report->entries_applied),
                   static_cast<unsigned long long>(report->logs_marked_invalid));
    }
  }
  return daemon;
}

puddles::Status Daemon::Initialize() {
  std::error_code ec;
  fs::create_directories(options_.root_dir, ec);
  if (ec) {
    return puddles::IoError("create root dir: " + ec.message());
  }
  RETURN_IF_ERROR(OpenTables());
  return RebuildAddressMap();
}

puddles::Status Daemon::OpenTables() {
  const std::string root = options_.root_dir + "/";
  const uint64_t puddle_slots = options_.puddle_table_slots / options_.shards;
  const uint64_t ptrmap_slots = options_.ptrmap_table_slots / options_.shards;
  // Shard choice is part of the on-disk layout: hash routing and file naming
  // both depend on it. A reopen with a different count must fail loudly —
  // opening a subset (or expecting extra shards) would silently hide the
  // records living in the other files.
  if (fs::exists(root + "puddles.0.tbl")) {
    const bool extra = fs::exists(root + "puddles." + std::to_string(options_.shards) + ".tbl");
    const bool missing =
        !fs::exists(root + "puddles." + std::to_string(options_.shards - 1) + ".tbl");
    if (extra || missing) {
      return puddles::FailedPreconditionError(
          "daemon root was created with a different shard count");
    }
  }
  shards_.clear();
  for (uint32_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string suffix = "." + std::to_string(i) + ".tbl";
    RETURN_IF_ERROR(OpenTable(root + "puddles" + suffix, puddle_slots, &shard->puddle_file,
                              &shard->puddles));
    RETURN_IF_ERROR(OpenTable(root + "ptrmaps" + suffix, ptrmap_slots, &shard->ptrmap_file,
                              &shard->ptrmaps));
    shards_.push_back(std::move(shard));
  }
  RETURN_IF_ERROR(
      OpenTable(root + "pools.tbl", options_.pool_table_slots, &pool_table_file_, &pools_));
  RETURN_IF_ERROR(OpenTable(root + "logspaces.tbl", options_.logspace_table_slots,
                            &logspace_table_file_, &logspaces_));
  return puddles::OkStatus();
}

Daemon::Shard& Daemon::ShardFor(const Uuid& uuid) {
  return *shards_[puddles::UuidHash{}(uuid) & (shards_.size() - 1)];
}

Daemon::Shard& Daemon::ShardForType(uint64_t type_id) {
  // splitmix64 finalizer: type ids are often small sequential integers, so
  // mix before masking. The result must stay stable across processes — the
  // shard choice decides which table file holds the record.
  uint64_t x = type_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return *shards_[x & (shards_.size() - 1)];
}

void Daemon::ForEachPuddle(bool exclusive,
                           const std::function<void(const Uuid&, const PuddleRecord&)>& fn) {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock;
    if (!exclusive) {
      lock = std::unique_lock<std::mutex>(shard->mu);
    }
    shard->puddles->ForEach(fn);
  }
}

puddles::Status Daemon::RebuildAddressMap() {
  // Startup only: single-threaded, so no locks (exclusive iteration).
  addr_alloc_ = puddles::RangeAllocator(pmem::ConfiguredSpaceBase(),
                                        pmem::ConfiguredSpaceSize());
  by_base_.clear();
  // Pass 1: real base assignments. These must all claim cleanly — an actual
  // overlap between two live puddles is registry corruption.
  puddles::Status status = puddles::OkStatus();
  ForEachPuddle(/*exclusive=*/true, [&](const Uuid& uuid, const PuddleRecord& record) {
    if (!status.ok()) {
      return;
    }
    puddles::Status claim = addr_alloc_.Claim(record.base_addr, record.file_size);
    if (!claim.ok()) {
      status = puddles::DataLossError("overlapping base assignments in registry: " +
                                      uuid.ToString());
      return;
    }
    by_base_[record.base_addr] = uuid;
  });
  RETURN_IF_ERROR(status);
  // Pass 2: frontier holds. An unfinished relocation keeps its old range
  // reserved so stale pointers can never alias a new puddle (§4.2). Best
  // effort: when the conflict that forced the relocation is a live puddle
  // (the import-next-to-original case), its base claim from pass 1 already
  // covers the range — a hold claimed in hash order before that puddle's own
  // record would make pass 1 falsely report corruption, which is exactly the
  // restart-after-crashed-import bug crashsim found.
  ForEachPuddle(/*exclusive=*/true, [&](const Uuid&, const PuddleRecord& record) {
    if (record.prev_base != 0 && record.prev_base != record.base_addr) {
      (void)addr_alloc_.Claim(record.prev_base, record.file_size);
    }
  });
  return status;
}

std::string Daemon::PuddlePath(const Uuid& uuid) const {
  return options_.root_dir + "/" + uuid.ToString() + ".pud";
}

puddles::Status Daemon::CheckAccess(uint32_t owner_uid, uint32_t owner_gid, uint32_t mode,
                                    const Credentials& creds, bool write) {
  uint32_t bits;
  if (creds.uid == owner_uid) {
    bits = (mode >> 6) & 7;
  } else if (creds.gid == owner_gid) {
    bits = (mode >> 3) & 7;
  } else {
    bits = mode & 7;
  }
  const uint32_t needed = write ? 0b010 : 0b100;
  if ((bits & needed) != needed) {
    return puddles::PermissionDeniedError(write ? "write access denied"
                                                : "read access denied");
  }
  return puddles::OkStatus();
}

puddles::Result<PuddleRecord> Daemon::LookupPuddle(const Uuid& uuid) {
  Shard& shard = ShardFor(uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  return LookupPuddleUnlocked(uuid);
}

puddles::Result<PuddleRecord> Daemon::LookupPuddleUnlocked(const Uuid& uuid) {
  auto record = ShardFor(uuid).puddles->Get(uuid);
  if (!record.ok()) {
    return puddles::NotFoundError("unknown puddle " + uuid.ToString());
  }
  return *record;
}

puddles::Status Daemon::UpdatePuddleRecordUnlocked(const PuddleRecord& record) {
  return ShardFor(record.uuid).puddles->Put(record.uuid, record);
}

void Daemon::RollbackPuddle(const Uuid& uuid) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  Shard& shard = ShardFor(uuid);
  PuddleRecord record{};
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto found = shard.puddles->Get(uuid);
    if (!found.ok()) {
      return;
    }
    record = *found;
    (void)shard.puddles->Erase(uuid);
  }
  {
    std::lock_guard<std::mutex> lock(addr_mu_);
    (void)addr_alloc_.Free(record.base_addr);
    by_base_.erase(record.base_addr);
  }
  ::unlink(PuddlePath(uuid).c_str());
}

puddles::Result<std::pair<PuddleInfo, int>> Daemon::CreatePuddle(PuddleKind kind,
                                                                 size_t heap_size,
                                                                 const Credentials& creds,
                                                                 const Uuid& pool_uuid,
                                                                 uint32_t mode) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  if (!puddles::IsPowerOfTwo(heap_size)) {
    return puddles::InvalidArgumentError("puddle heap size must be a power of two");
  }
  const Uuid uuid = Uuid::Generate();
  const size_t file_size = puddles::Puddle::FileSizeFor(kind, heap_size);

  uint64_t base = 0;
  {
    std::lock_guard<std::mutex> lock(addr_mu_);
    ASSIGN_OR_RETURN(base, addr_alloc_.Allocate(file_size));
  }
  auto free_base = [&] {
    std::lock_guard<std::mutex> lock(addr_mu_);
    (void)addr_alloc_.Free(base);
  };
  auto file = pmem::PmemFile::Create(PuddlePath(uuid), file_size);
  if (!file.ok()) {
    free_base();
    return file.status();
  }
  auto mapped = file->Map();
  if (!mapped.ok()) {
    free_base();
    return mapped.status();
  }
  puddles::PuddleParams params;
  params.kind = kind;
  params.heap_size = heap_size;
  params.uuid = uuid;
  params.pool_uuid = pool_uuid;
  params.base_addr = base;
  RETURN_IF_ERROR(puddles::Puddle::Format(*mapped, file_size, params));
  file->Unmap();

  PuddleRecord record{};
  record.uuid = uuid;
  record.pool_uuid = pool_uuid;
  record.kind = static_cast<uint32_t>(kind);
  record.mode = mode;
  record.owner_uid = creds.uid;
  record.owner_gid = creds.gid;
  record.base_addr = base;
  record.file_size = file_size;
  record.heap_size = heap_size;
  {
    Shard& shard = ShardFor(uuid);
    std::lock_guard<std::mutex> lock(shard.mu);
    puddles::Status put = shard.puddles->Put(uuid, record);
    if (!put.ok()) {
      free_base();
      ::unlink(PuddlePath(uuid).c_str());
      return put;
    }
  }
  {
    std::lock_guard<std::mutex> lock(addr_mu_);
    by_base_[base] = uuid;
  }

  return std::make_pair(PuddleInfo::FromRecord(record), file->ReleaseFd());
}

puddles::Result<std::pair<PuddleInfo, int>> Daemon::GetPuddle(const Uuid& uuid,
                                                              const Credentials& creds,
                                                              bool write) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  ASSIGN_OR_RETURN(PuddleRecord record, LookupPuddle(uuid));
  RETURN_IF_ERROR(CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, write));
  int fd = ::open(PuddlePath(uuid).c_str(), write ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    return puddles::ErrnoError("open puddle file", errno);
  }
  return std::make_pair(PuddleInfo::FromRecord(record), fd);
}

puddles::Result<PuddleInfo> Daemon::StatPuddle(const Uuid& uuid, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  ASSIGN_OR_RETURN(PuddleRecord record, LookupPuddle(uuid));
  RETURN_IF_ERROR(
      CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, /*write=*/false));
  return PuddleInfo::FromRecord(record);
}

puddles::Result<PuddleInfo> Daemon::FindPuddleByAddr(uint64_t addr, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  Uuid uuid;
  {
    std::lock_guard<std::mutex> lock(addr_mu_);
    auto range = addr_alloc_.Containing(addr);
    if (!range.ok()) {
      return puddles::NotFoundError("address not in any puddle");
    }
    auto it = by_base_.find(range->first);
    if (it == by_base_.end()) {
      return puddles::NotFoundError("address in a frontier hold, not a live puddle");
    }
    uuid = it->second;
  }
  ASSIGN_OR_RETURN(PuddleRecord record, LookupPuddle(uuid));
  RETURN_IF_ERROR(
      CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, /*write=*/false));
  return PuddleInfo::FromRecord(record);
}

puddles::Status Daemon::DeletePuddle(const Uuid& uuid, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  PuddleRecord record{};
  {
    Shard& shard = ShardFor(uuid);
    std::lock_guard<std::mutex> lock(shard.mu);
    ASSIGN_OR_RETURN(record, LookupPuddleUnlocked(uuid));
    RETURN_IF_ERROR(
        CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, /*write=*/true));
    RETURN_IF_ERROR(shard.puddles->Erase(uuid));
  }
  {
    std::lock_guard<std::mutex> lock(addr_mu_);
    (void)addr_alloc_.Free(record.base_addr);
    by_base_.erase(record.base_addr);
  }
  ::unlink(PuddlePath(uuid).c_str());
  return puddles::OkStatus();
}

puddles::Result<PoolInfo> Daemon::CreatePool(const std::string& name, const Credentials& creds,
                                             uint32_t mode) {
  {
    std::shared_lock<std::shared_mutex> structure(structure_mu_);
    std::lock_guard<std::mutex> lock(pools_mu_);
    if (pools_->Contains(NameKey(name))) {
      return puddles::AlreadyExistsError("pool exists: " + name);
    }
  }
  const Uuid pool_uuid = Uuid::Generate();
  // The pool's metadata puddle (member directory + translation table).
  ASSIGN_OR_RETURN(auto created, CreatePuddle(PuddleKind::kPoolMeta, 1 << 20, creds, pool_uuid,
                                              mode));
  auto [meta_info, fd] = created;
  auto format_meta = [&]() -> puddles::Status {
    auto file = pmem::PmemFile::FromFd(fd);
    RETURN_IF_ERROR(file.status());
    ASSIGN_OR_RETURN(void* base, file->Map());
    ASSIGN_OR_RETURN(puddles::Puddle meta_puddle,
                     puddles::Puddle::Attach(base, file->size()));
    return puddles::PoolMetaView::Format(meta_puddle, pool_uuid, name.c_str());
  };
  if (puddles::Status formatted = format_meta(); !formatted.ok()) {
    RollbackPuddle(meta_info.uuid);
    return formatted;
  }

  PoolRecord record{};
  record.pool_uuid = pool_uuid;
  record.meta_puddle = meta_info.uuid;
  std::strncpy(record.name, name.c_str(), sizeof(record.name) - 1);
  record.owner_uid = creds.uid;
  record.owner_gid = creds.gid;
  record.mode = mode;

  bool lost_race = false;
  {
    std::shared_lock<std::shared_mutex> structure(structure_mu_);
    std::lock_guard<std::mutex> lock(pools_mu_);
    // Re-check under the lock: another CreatePool for the same name may have
    // won between the pre-check above and here.
    if (pools_->Contains(NameKey(name))) {
      lost_race = true;
    } else {
      RETURN_IF_ERROR(pools_->Put(NameKey(name), record));
    }
  }
  if (lost_race) {
    RollbackPuddle(meta_info.uuid);
    return puddles::AlreadyExistsError("pool exists: " + name);
  }

  PoolInfo info;
  info.pool_uuid = pool_uuid;
  info.meta_puddle = meta_info.uuid;
  std::strncpy(info.name, record.name, sizeof(info.name) - 1);
  return info;
}

puddles::Result<PoolInfo> Daemon::OpenPool(const std::string& name, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  std::lock_guard<std::mutex> lock(pools_mu_);
  auto record = pools_->Get(NameKey(name));
  if (!record.ok() || std::strncmp(record->name, name.c_str(), sizeof(record->name)) != 0) {
    return puddles::NotFoundError("unknown pool: " + name);
  }
  RETURN_IF_ERROR(CheckAccess(record->owner_uid, record->owner_gid, record->mode, creds,
                              /*write=*/false));
  PoolInfo info;
  info.pool_uuid = record->pool_uuid;
  info.meta_puddle = record->meta_puddle;
  std::strncpy(info.name, record->name, sizeof(info.name) - 1);
  return info;
}

puddles::Status Daemon::RegisterLogSpace(const Uuid& uuid, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  ASSIGN_OR_RETURN(PuddleRecord record, LookupPuddle(uuid));
  if (record.kind != static_cast<uint32_t>(PuddleKind::kLogSpace)) {
    return puddles::InvalidArgumentError("not a log space puddle");
  }
  RETURN_IF_ERROR(
      CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, /*write=*/true));
  LogSpaceRecord ls{};
  ls.uuid = uuid;
  ls.owner_uid = creds.uid;
  ls.owner_gid = creds.gid;
  std::lock_guard<std::mutex> lock(logspaces_mu_);
  return logspaces_->Put(uuid, ls);
}

puddles::Status Daemon::RegisterPtrMap(const PtrMapRecord& record) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  if (record.num_fields > kMaxPtrFields) {
    return puddles::InvalidArgumentError("too many pointer fields");
  }
  if (record.repeat_count != 0 &&
      (record.repeat_offset + static_cast<uint64_t>(record.repeat_count) * sizeof(uint64_t) >
       record.object_size)) {
    return puddles::InvalidArgumentError("pointer-array region outside object");
  }
  Shard& shard = ShardForType(record.type_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.ptrmaps->Put(record.type_id, record);
}

puddles::Result<PtrMapRecord> Daemon::GetPtrMap(uint64_t type_id) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  Shard& shard = ShardForType(type_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto record = shard.ptrmaps->Get(type_id);
  if (!record.ok()) {
    return puddles::NotFoundError("no pointer map for type");
  }
  return *record;
}

puddles::Status Daemon::CompleteRewrite(const Uuid& uuid, const Credentials& creds) {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  Shard& shard = ShardFor(uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  ASSIGN_OR_RETURN(PuddleRecord record, LookupPuddleUnlocked(uuid));
  RETURN_IF_ERROR(
      CheckAccess(record.owner_uid, record.owner_gid, record.mode, creds, /*write=*/true));
  record.flags &= ~puddles::kPuddleNeedsRewrite;
  record.prev_base = 0;
  RETURN_IF_ERROR(UpdatePuddleRecordUnlocked(record));
  // Note: the old range is NOT freed here. In the conflict case it belongs to
  // the live puddle that caused the conflict; in the foreign-import case it
  // was never claimed. Still-flagged members translate pointers through the
  // pool meta's persistent old-base table, which outlives this flag.
  return puddles::OkStatus();
}

uint64_t Daemon::puddle_count() {
  std::shared_lock<std::shared_mutex> structure(structure_mu_);
  uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->puddles->size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Recovery (§4.1, §4.6)
// ---------------------------------------------------------------------------

namespace {

// Maps data puddles at their assigned bases on demand and confines writes to
// puddles the crashed owner could modify.
class RecoveryResolver : public puddles::AddressResolver {
 public:
  struct MappedPuddle {
    pmem::PmemFile file;
    uint64_t base;
    uint64_t size;
  };

  RecoveryResolver(puddles::RangeAllocator* alloc,
                   std::unordered_map<uint64_t, Uuid>* by_base,
                   std::function<puddles::Result<PuddleRecord>(const Uuid&)> lookup,
                   std::function<std::string(const Uuid&)> path_of, Credentials owner)
      : alloc_(alloc),
        by_base_(by_base),
        lookup_(std::move(lookup)),
        path_of_(std::move(path_of)),
        owner_(owner) {}

  ~RecoveryResolver() {
    auto& space = pmem::GlobalPuddleSpace();
    for (auto& [base, mapped] : mapped_) {
      (void)space.UnmapToReserved(mapped.base, mapped.size);
      (void)space.FreeRange(mapped.base);
    }
  }

  void* Resolve(uint64_t addr, uint32_t size) override {
    auto range = alloc_->Containing(addr);
    if (!range.ok()) {
      return nullptr;
    }
    auto it = by_base_->find(range->first);
    if (it == by_base_->end()) {
      return nullptr;  // Frontier hold or freed puddle: not writable.
    }
    auto record = lookup_(it->second);
    if (!record.ok()) {
      return nullptr;
    }
    if (addr + size > record->base_addr + record->file_size) {
      return nullptr;
    }
    if (!Daemon::CheckAccess(record->owner_uid, record->owner_gid, record->mode,
                                       owner_, /*write=*/true)
             .ok()) {
      return nullptr;
    }
    if (mapped_.find(record->base_addr) == mapped_.end()) {
      if (!MapAtBase(*record).ok()) {
        return nullptr;
      }
    }
    return reinterpret_cast<void*>(addr);
  }

 private:
  puddles::Status MapAtBase(const PuddleRecord& record) {
    auto& space = pmem::GlobalPuddleSpace();
    auto file = pmem::PmemFile::Open(path_of_(record.uuid));
    RETURN_IF_ERROR(file.status());
    RETURN_IF_ERROR(space.ClaimRange(record.base_addr, record.file_size));
    puddles::Status mapped = space.MapFileAt(file->fd(), record.base_addr, record.file_size,
                                             /*writable=*/true);
    if (!mapped.ok()) {
      (void)space.FreeRange(record.base_addr);
      return mapped;
    }
    MappedPuddle entry;
    entry.file = std::move(*file);
    entry.base = record.base_addr;
    entry.size = record.file_size;
    mapped_.emplace(record.base_addr, std::move(entry));
    return puddles::OkStatus();
  }

  puddles::RangeAllocator* alloc_;
  std::unordered_map<uint64_t, Uuid>* by_base_;
  std::function<puddles::Result<PuddleRecord>(const Uuid&)> lookup_;
  std::function<std::string(const Uuid&)> path_of_;
  Credentials owner_;
  std::unordered_map<uint64_t, MappedPuddle> mapped_;
};

}  // namespace

puddles::Result<RecoveryReport> Daemon::RunRecovery() {
  // Recovery rewrites client-visible state wholesale: take the structure lock
  // exclusively and access every registry without fine-grained locks.
  std::unique_lock<std::shared_mutex> structure(structure_mu_);
  return RunRecoveryLocked();
}

puddles::Result<RecoveryReport> Daemon::RunRecoveryLocked() {
  RecoveryReport report;

  std::vector<LogSpaceRecord> spaces;
  logspaces_->ForEach(
      [&](const Uuid&, const LogSpaceRecord& record) { spaces.push_back(record); });

  for (const LogSpaceRecord& space_record : spaces) {
    ++report.log_spaces_scanned;
    auto ls_record = LookupPuddleUnlocked(space_record.uuid);
    if (!ls_record.ok()) {
      continue;  // Log space puddle vanished; nothing to recover.
    }
    auto ls_file = pmem::PmemFile::Open(PuddlePath(space_record.uuid));
    if (!ls_file.ok()) {
      continue;
    }
    auto ls_base = ls_file->Map();
    if (!ls_base.ok()) {
      continue;
    }
    auto ls_puddle = puddles::Puddle::Attach(*ls_base, ls_file->size());
    if (!ls_puddle.ok()) {
      continue;
    }
    auto ls_view = puddles::LogSpaceView::Attach(*ls_puddle);
    if (!ls_view.ok()) {
      continue;
    }

    Credentials owner{space_record.owner_uid, space_record.owner_gid};

    for (uint32_t i = 0; i < ls_view->num_entries(); ++i) {
      ++report.logs_scanned;
      // Follow the chain of log puddles (Fig. 5).
      std::vector<pmem::PmemFile> chain_files;
      std::vector<puddles::LogRegion> chain;
      Uuid cursor = ls_view->entry(i);
      bool chain_ok = true;
      while (!cursor.is_nil()) {
        auto record = LookupPuddleUnlocked(cursor);
        if (!record.ok() ||
            record->kind != static_cast<uint32_t>(PuddleKind::kLog)) {
          chain_ok = false;
          break;
        }
        auto file = pmem::PmemFile::Open(PuddlePath(cursor));
        if (!file.ok()) {
          chain_ok = false;
          break;
        }
        auto base = file->Map();
        if (!base.ok()) {
          chain_ok = false;
          break;
        }
        auto puddle = puddles::Puddle::Attach(*base, file->size());
        if (!puddle.ok()) {
          chain_ok = false;
          break;
        }
        auto region = puddles::LogRegion::Attach(puddle->heap(), puddle->heap_size());
        if (!region.ok()) {
          chain_ok = false;
          break;
        }
        cursor = region->next_log();
        chain.push_back(*region);
        chain_files.push_back(std::move(*file));
      }
      if (!chain_ok || chain.empty()) {
        continue;
      }

      // Epoch gate (docs/epoch.md): a chain tagged with an epoch at or below
      // the log space's retirement record belongs to an epoch whose drain
      // fence completed — every mutation it would undo is already durable.
      // Replaying it would roll back committed transactions, so reset it
      // without replay. (Tag 0 = immediate mode, never gated.)
      const uint64_t tag = chain.front().epoch_tag();
      if (tag != 0 && tag <= ls_view->retired_epoch()) {
        ++report.logs_gated_retired;
        chain.front().Reset(0, 2);
        continue;
      }

      RecoveryResolver resolver(
          &addr_alloc_, &by_base_,
          [this](const Uuid& uuid) { return LookupPuddleUnlocked(uuid); },
          [this](const Uuid& uuid) { return PuddlePath(uuid); }, owner);
      auto stats = puddles::ReplayLogChain(chain, resolver);
      if (!stats.ok()) {
        // Poisoned log: mark invalid, never replay (§4.6). Range (0,0) keeps
        // all entries out of range until the owner resets it.
        chain.front().SetSeqRange(0, 0);
        ++report.logs_marked_invalid;
        continue;
      }
      report.entries_applied += stats->applied;
      report.volatile_skipped += stats->skipped_volatile;
      if (stats->applied > 0) {
        ++report.logs_replayed;
      }
      chain.front().Reset(0, 2);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Export / import (§4.2)
// ---------------------------------------------------------------------------

puddles::Status Daemon::ExportPool(const std::string& pool_name, const std::string& dest_dir,
                                   const Credentials& creds) {
  // Exports read a consistent whole-pool snapshot: exclusive structure lock,
  // registries accessed without fine-grained locks below.
  std::unique_lock<std::shared_mutex> structure(structure_mu_);
  auto pool = pools_->Get(NameKey(pool_name));
  if (!pool.ok()) {
    return puddles::NotFoundError("unknown pool: " + pool_name);
  }
  RETURN_IF_ERROR(
      CheckAccess(pool->owner_uid, pool->owner_gid, pool->mode, creds, /*write=*/false));

  std::error_code ec;
  fs::create_directories(dest_dir, ec);
  if (ec) {
    return puddles::IoError("create export dir: " + ec.message());
  }

  // Read the member list from the pool meta puddle.
  auto meta_file = pmem::PmemFile::Open(PuddlePath(pool->meta_puddle));
  RETURN_IF_ERROR(meta_file.status());
  ASSIGN_OR_RETURN(void* meta_base, meta_file->Map());
  ASSIGN_OR_RETURN(puddles::Puddle meta_puddle,
                   puddles::Puddle::Attach(meta_base, meta_file->size()));
  ASSIGN_OR_RETURN(puddles::PoolMetaView meta, puddles::PoolMetaView::Attach(meta_puddle));

  puddles::WireWriter manifest;
  manifest.PutU64(kManifestMagic);
  manifest.PutString(pool_name);
  manifest.PutUuid(pool->pool_uuid);
  manifest.PutUuid(pool->meta_puddle);
  manifest.PutU32(meta.num_members());

  // Copy files byte-for-byte: "Exporting pools in Puddles does not require
  // any serialization and exports the raw in-memory data structures."
  auto copy_puddle = [&](const Uuid& uuid) -> puddles::Status {
    fs::copy_file(PuddlePath(uuid), fs::path(dest_dir) / (uuid.ToString() + ".pud"),
                  fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return puddles::IoError("copy puddle: " + ec.message());
    }
    return puddles::OkStatus();
  };

  RETURN_IF_ERROR(copy_puddle(pool->meta_puddle));
  for (uint32_t i = 0; i < meta.num_members(); ++i) {
    manifest.PutUuid(meta.member(i));
    RETURN_IF_ERROR(copy_puddle(meta.member(i)));
  }

  // Pointer maps travel with the data (§4.2): export them all.
  std::vector<PtrMapRecord> maps;
  for (auto& shard : shards_) {
    shard->ptrmaps->ForEach([&](const uint64_t&, const PtrMapRecord& r) { maps.push_back(r); });
  }
  manifest.PutU32(static_cast<uint32_t>(maps.size()));
  for (const PtrMapRecord& r : maps) {
    manifest.PutBytes(&r, sizeof(r));
  }

  // Manifest written last: a partial export without a manifest is invisible.
  std::string manifest_path = (fs::path(dest_dir) / "manifest.bin").string();
  FILE* f = std::fopen(manifest_path.c_str(), "wb");
  if (f == nullptr) {
    return puddles::ErrnoError("write manifest", errno);
  }
  const auto& bytes = manifest.bytes();
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return puddles::IoError("short manifest write");
  }
  return puddles::OkStatus();
}

puddles::Result<ImportResult> Daemon::ImportPool(const std::string& src_dir,
                                                 const std::string& new_name,
                                                 const Credentials& creds, uint32_t mode) {
  // Imports mutate the address map, multiple shards, and the pool directory
  // as one logical step: exclusive structure lock, no fine-grained locks.
  std::unique_lock<std::shared_mutex> structure(structure_mu_);
  if (pools_->Contains(NameKey(new_name))) {
    return puddles::AlreadyExistsError("pool exists: " + new_name);
  }

  // Parse the manifest.
  std::string manifest_path = (fs::path(src_dir) / "manifest.bin").string();
  auto manifest_file = pmem::PmemFile::Open(manifest_path, /*writable=*/false);
  RETURN_IF_ERROR(manifest_file.status());
  ASSIGN_OR_RETURN(void* mbase, manifest_file->Map());
  puddles::WireReader reader(static_cast<const uint8_t*>(mbase), manifest_file->size());

  uint64_t magic;
  RETURN_IF_ERROR(reader.GetU64(&magic));
  if (magic != kManifestMagic) {
    return puddles::DataLossError("bad export manifest");
  }
  std::string old_name;
  Uuid old_pool_uuid, old_meta_uuid;
  uint32_t num_members;
  RETURN_IF_ERROR(reader.GetString(&old_name));
  RETURN_IF_ERROR(reader.GetUuid(&old_pool_uuid));
  RETURN_IF_ERROR(reader.GetUuid(&old_meta_uuid));
  RETURN_IF_ERROR(reader.GetU32(&num_members));
  std::vector<Uuid> old_members(num_members);
  for (auto& member : old_members) {
    RETURN_IF_ERROR(reader.GetUuid(&member));
  }
  uint32_t num_maps;
  RETURN_IF_ERROR(reader.GetU32(&num_maps));
  std::vector<PtrMapRecord> maps(num_maps);
  for (auto& map : maps) {
    std::vector<uint8_t> blob;
    RETURN_IF_ERROR(reader.GetBytes(&blob));
    if (blob.size() != sizeof(PtrMapRecord)) {
      return puddles::DataLossError("bad pointer map blob in manifest");
    }
    std::memcpy(&map, blob.data(), sizeof(PtrMapRecord));
  }

  const Uuid new_pool_uuid = Uuid::Generate();

  // Import one puddle copy: fresh UUID, conflict-checked base.
  struct Imported {
    Uuid old_uuid;
    Uuid new_uuid;
    uint64_t old_base = 0;  // Non-zero if relocated.
    PuddleRecord record;
  };
  std::vector<Imported> imported;
  bool any_moved = false;
  std::error_code ec;

  auto import_one = [&](const Uuid& old_uuid) -> puddles::Status {
    Imported entry;
    entry.old_uuid = old_uuid;
    entry.new_uuid = Uuid::Generate();
    fs::path src = fs::path(src_dir) / (old_uuid.ToString() + ".pud");
    fs::copy_file(src, PuddlePath(entry.new_uuid), ec);
    if (ec) {
      return puddles::IoError("copy import: " + ec.message());
    }
    auto file = pmem::PmemFile::Open(PuddlePath(entry.new_uuid));
    RETURN_IF_ERROR(file.status());
    ASSIGN_OR_RETURN(void* base, file->Map());
    ASSIGN_OR_RETURN(puddles::Puddle puddle, puddles::Puddle::Attach(base, file->size()));

    // Re-identify the copy.
    puddle.header()->uuid = entry.new_uuid;
    puddle.header()->pool_uuid = new_pool_uuid;
    pmem::FlushFence(puddle.header(), sizeof(puddles::PuddleHeader));

    const uint64_t wanted = puddle.base_addr();
    uint64_t assigned = wanted;
    if (addr_alloc_.Claim(wanted, file->size()).ok()) {
      // "In the common case where the assigned address ... does not conflict
      // ... Libpuddles can simply map the puddle."
    } else {
      ASSIGN_OR_RETURN(assigned, addr_alloc_.Allocate(file->size()));
      puddle.AssignNewBase(assigned);  // Sets prev_base + needs-rewrite flag.
      entry.old_base = wanted;
      any_moved = true;
    }

    PuddleRecord record{};
    record.uuid = entry.new_uuid;
    record.pool_uuid = new_pool_uuid;
    record.kind = static_cast<uint32_t>(puddle.kind());
    record.mode = mode;
    record.owner_uid = creds.uid;
    record.owner_gid = creds.gid;
    record.base_addr = assigned;
    record.file_size = file->size();
    record.heap_size = puddle.heap_size();
    record.prev_base = puddle.header()->prev_base_addr;
    record.flags = puddle.header()->flags;
    entry.record = record;
    imported.push_back(entry);
    return puddles::OkStatus();
  };

  RETURN_IF_ERROR(import_one(old_meta_uuid));
  for (const Uuid& member : old_members) {
    RETURN_IF_ERROR(import_one(member));
  }

  // If anything moved, every data member's content is suspect: pointers may
  // target moved ranges. Flag them all; the translation table says how to
  // rewrite (identity-based members translate pointers into *other* members'
  // old ranges).
  uint32_t members_relocated = 0;
  for (Imported& entry : imported) {
    puddles::PuddleKind kind = static_cast<puddles::PuddleKind>(entry.record.kind);
    if (entry.old_base != 0) {
      ++members_relocated;
    }
    if (any_moved && kind == PuddleKind::kData &&
        (entry.record.flags & puddles::kPuddleNeedsRewrite) == 0) {
      auto file = pmem::PmemFile::Open(PuddlePath(entry.new_uuid));
      RETURN_IF_ERROR(file.status());
      ASSIGN_OR_RETURN(void* base, file->Map());
      ASSIGN_OR_RETURN(puddles::Puddle puddle, puddles::Puddle::Attach(base, file->size()));
      puddle.header()->flags |= puddles::kPuddleNeedsRewrite;
      puddle.header()->prev_base_addr = puddle.base_addr();  // Identity translation.
      // Arming the flag must also restart the walk: an export taken from a
      // puddle whose CompleteRewrite tore between its two fences carries a
      // stale (flag-clear, frontier = count) header, and resuming from it
      // here would skip the whole rewrite.
      puddle.header()->rewrite_frontier = 0;
      pmem::FlushFence(puddle.header(), sizeof(puddles::PuddleHeader));
      entry.record.flags = puddle.header()->flags;
      entry.record.prev_base = puddle.header()->prev_base_addr;
    }
    RETURN_IF_ERROR(UpdatePuddleRecordUnlocked(entry.record));
    by_base_[entry.record.base_addr] = entry.new_uuid;
  }

  // Fix the pool meta copy: new identity, remapped member UUIDs, translation
  // table with the old bases of moved members.
  const Imported& meta_entry = imported[0];
  {
    auto file = pmem::PmemFile::Open(PuddlePath(meta_entry.new_uuid));
    RETURN_IF_ERROR(file.status());
    ASSIGN_OR_RETURN(void* base, file->Map());
    ASSIGN_OR_RETURN(puddles::Puddle puddle, puddles::Puddle::Attach(base, file->size()));
    ASSIGN_OR_RETURN(puddles::PoolMetaView meta, puddles::PoolMetaView::Attach(puddle));

    auto* header = reinterpret_cast<puddles::PoolMetaHeader*>(puddle.heap());
    header->pool_uuid = new_pool_uuid;
    std::memset(header->name, 0, sizeof(header->name));
    std::strncpy(header->name, new_name.c_str(), sizeof(header->name) - 1);
    pmem::FlushFence(header, sizeof(puddles::PoolMetaHeader));

    for (uint32_t i = 0; i < meta.num_members(); ++i) {
      for (size_t j = 1; j < imported.size(); ++j) {
        if (imported[j].old_uuid == meta.member(i)) {
          RETURN_IF_ERROR(meta.ReplaceMember(i, imported[j].new_uuid));
          meta.SetMemberOldBase(i, imported[j].old_base);
          if (meta.root_puddle() == imported[j].old_uuid) {
            meta.SetRoot(imported[j].new_uuid, meta.root_offset());
          }
          break;
        }
      }
    }
  }

  for (const PtrMapRecord& map : maps) {
    RETURN_IF_ERROR(ShardForType(map.type_id).ptrmaps->Put(map.type_id, map));
  }

  PoolRecord pool_record{};
  pool_record.pool_uuid = new_pool_uuid;
  pool_record.meta_puddle = meta_entry.new_uuid;
  std::strncpy(pool_record.name, new_name.c_str(), sizeof(pool_record.name) - 1);
  pool_record.owner_uid = creds.uid;
  pool_record.owner_gid = creds.gid;
  pool_record.mode = mode;
  RETURN_IF_ERROR(pools_->Put(NameKey(new_name), pool_record));

  ImportResult result;
  result.pool.pool_uuid = new_pool_uuid;
  result.pool.meta_puddle = meta_entry.new_uuid;
  std::strncpy(result.pool.name, pool_record.name, sizeof(result.pool.name) - 1);
  result.members_imported = static_cast<uint32_t>(imported.size()) - 1;
  result.members_relocated = members_relocated;
  return result;
}

}  // namespace puddled
