// Puddled — the privileged daemon that owns every puddle on the machine
// (paper §3.2, §4.3, §4.6).
//
// Responsibilities:
//   * Puddle lifecycle: each puddle is a file under the daemon root,
//     exclusively daemon-owned; approved requests are answered with file
//     descriptors (capabilities).
//   * The global puddle address space: assigns each puddle a unique,
//     non-overlapping base address.
//   * Access control: a UNIX-like owner/group/mode model checked against
//     caller credentials.
//   * Application-independent recovery (§4.1): at startup, before any client
//     can map data, registered log spaces are scanned and valid logs are
//     replayed — with targets confined to puddles the crashed owner could
//     write (§4.6).
//   * Relocation bookkeeping (§4.2): fresh base assignment on import
//     conflicts, persistent frontier state so interrupted relocations resume.
//   * Pool export/import (§4.2 "Relocation on import"): exports copy raw
//     puddle files plus a manifest (no serialization); imports register the
//     copies under fresh UUIDs and build the pool's translation table.
//
// This class is the daemon's entire brain. The socket server (server.h) is a
// thin marshalling layer over it; embedded-mode clients call it directly —
// same code paths, same guarantees.
#ifndef SRC_DAEMON_DAEMON_H_
#define SRC_DAEMON_DAEMON_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/range_allocator.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/daemon/types.h"
#include "src/pmem/mapped_file.h"
#include "src/pmhash/pmhash.h"

namespace puddled {

struct RecoveryReport {
  uint64_t log_spaces_scanned = 0;
  uint64_t logs_scanned = 0;
  uint64_t logs_replayed = 0;  // Logs with at least one valid entry.
  uint64_t entries_applied = 0;
  uint64_t logs_marked_invalid = 0;  // Poisoned logs (permission failures).
  uint64_t volatile_skipped = 0;
  uint64_t logs_gated_retired = 0;  // Epoch-tagged logs gated out of replay
                                    // by the retirement record (docs/epoch.md).
};

struct ImportResult {
  PoolInfo pool;
  uint32_t members_imported = 0;
  uint32_t members_relocated = 0;  // Members that needed a fresh base.
};

class Daemon {
 public:
  struct Options {
    std::string root_dir;
    bool run_recovery = true;
    // Registry capacities (power of two) — sized for tests/benches.
    uint64_t puddle_table_slots = 1 << 14;
    uint64_t pool_table_slots = 1 << 10;
    uint64_t ptrmap_table_slots = 1 << 10;
    uint64_t logspace_table_slots = 1 << 10;
    // Lock/table shards for the hot per-key paths (puddle and pointer-map
    // registries). Power of two; each shard owns slots/shards table slots in
    // its own file, so the shard choice is part of the on-disk layout and the
    // count must match across reopens of the same root.
    uint32_t shards = 8;
  };

  static puddles::Result<std::unique_ptr<Daemon>> Start(const Options& options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // ---- Puddle lifecycle ----

  // Creates a puddle and returns its info plus an open fd (caller owns it).
  puddles::Result<std::pair<PuddleInfo, int>> CreatePuddle(PuddleKind kind, size_t heap_size,
                                                           const Credentials& creds,
                                                           const Uuid& pool_uuid = Uuid::Nil(),
                                                           uint32_t mode = 0600);

  // Access-checked open; `write` requests a read-write capability.
  puddles::Result<std::pair<PuddleInfo, int>> GetPuddle(const Uuid& uuid,
                                                        const Credentials& creds, bool write);

  puddles::Result<PuddleInfo> StatPuddle(const Uuid& uuid, const Credentials& creds);

  // The puddle record whose assigned range contains `addr`.
  puddles::Result<PuddleInfo> FindPuddleByAddr(uint64_t addr, const Credentials& creds);

  puddles::Status DeletePuddle(const Uuid& uuid, const Credentials& creds);

  // ---- Pools ----

  puddles::Result<PoolInfo> CreatePool(const std::string& name, const Credentials& creds,
                                       uint32_t mode = 0600);
  puddles::Result<PoolInfo> OpenPool(const std::string& name, const Credentials& creds);

  // ---- Logging / recovery ----

  puddles::Status RegisterLogSpace(const Uuid& uuid, const Credentials& creds);
  puddles::Result<RecoveryReport> RunRecovery();

  // ---- Pointer maps (§4.2) ----

  puddles::Status RegisterPtrMap(const PtrMapRecord& record);
  puddles::Result<PtrMapRecord> GetPtrMap(uint64_t type_id);

  // ---- Relocation ----

  // Marks puddle `uuid` rewritten; when the whole pool is clean, frees the
  // frontier claims and clears the pool's translation table.
  puddles::Status CompleteRewrite(const Uuid& uuid, const Credentials& creds);

  // ---- Export / import ----

  puddles::Status ExportPool(const std::string& pool_name, const std::string& dest_dir,
                             const Credentials& creds);
  puddles::Result<ImportResult> ImportPool(const std::string& src_dir,
                                           const std::string& new_name,
                                           const Credentials& creds, uint32_t mode = 0600);

  // ---- Introspection ----

  const std::string& root_dir() const { return options_.root_dir; }
  uint64_t puddle_count();

  // On-disk backing file of a puddle. The daemon owns the naming scheme;
  // tools that touch puddle files directly (crashsim image materialization)
  // must ask rather than re-derive it.
  std::string PuddlePath(const Uuid& uuid) const;

  // UNIX-like permission check (public: shared with the recovery resolver and
  // exercised directly by tests).
  static puddles::Status CheckAccess(uint32_t owner_uid, uint32_t owner_gid, uint32_t mode,
                                     const Credentials& creds, bool write);

 private:
  using PuddleTable = puddles::PersistentHashMap<Uuid, PuddleRecord, puddles::UuidHash>;
  using PoolTable = puddles::PersistentHashMap<uint64_t, PoolRecord>;
  using PtrMapTable = puddles::PersistentHashMap<uint64_t, PtrMapRecord>;
  using LogSpaceTable = puddles::PersistentHashMap<Uuid, LogSpaceRecord, puddles::UuidHash>;

  // One lock-and-table shard of the hot per-key registries. Each shard's
  // tables live in their own files (puddles.<i>.tbl / ptrmaps.<i>.tbl) so two
  // shards never serialize on one PersistentHashMap journal.
  struct Shard {
    std::mutex mu;
    pmem::PmemFile puddle_file;
    pmem::PmemFile ptrmap_file;
    std::unique_ptr<PuddleTable> puddles;
    std::unique_ptr<PtrMapTable> ptrmaps;
  };

  explicit Daemon(Options options) : options_(std::move(options)) {}

  puddles::Status Initialize();
  puddles::Status OpenTables();
  puddles::Status RebuildAddressMap();

  // Shard routing: stable functions of the key bits (the shard choice is part
  // of the persistent layout, so nothing here may depend on process state).
  Shard& ShardFor(const Uuid& uuid);
  Shard& ShardForType(uint64_t type_id);

  // Single-key record access. The *Unlocked variants take no shard lock: the
  // caller must either hold the owning shard's mutex or hold structure_mu_
  // exclusively (recovery/import/export).
  puddles::Result<PuddleRecord> LookupPuddle(const Uuid& uuid);
  puddles::Result<PuddleRecord> LookupPuddleUnlocked(const Uuid& uuid);
  puddles::Status UpdatePuddleRecordUnlocked(const PuddleRecord& record);

  // Whole-registry iteration; takes each shard lock in turn unless the caller
  // holds structure_mu_ exclusively (exclusive = true).
  void ForEachPuddle(bool exclusive,
                     const std::function<void(const Uuid&, const PuddleRecord&)>& fn);

  // Best-effort teardown of a puddle created earlier in a failed multi-step
  // operation (erases the record, frees the range, unlinks the file).
  void RollbackPuddle(const Uuid& uuid);

  // Recovery helpers (structure_mu_ held exclusively).
  puddles::Result<RecoveryReport> RunRecoveryLocked();

  Options options_;

  // Lock order (see docs/daemon.md): structure_mu_ first, then at most one of
  // {shard.mu, pools_mu_, logspaces_mu_, addr_mu_} at a time — the fine
  // grained locks are never nested inside each other. Per-key ops take
  // structure_mu_ shared; ImportPool/ExportPool/RunRecovery take it exclusive
  // and then touch everything lock-free.
  std::shared_mutex structure_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cold-path registries (pool directory, log-space registrations).
  std::mutex pools_mu_;
  std::mutex logspaces_mu_;
  pmem::PmemFile pool_table_file_;
  pmem::PmemFile logspace_table_file_;
  std::unique_ptr<PoolTable> pools_;
  std::unique_ptr<LogSpaceTable> logspaces_;

  // Volatile assignment state, rebuilt from records at startup.
  std::mutex addr_mu_;
  puddles::RangeAllocator addr_alloc_;
  // base_addr -> uuid, for address → puddle resolution.
  std::unordered_map<uint64_t, Uuid> by_base_;
};

}  // namespace puddled

#endif  // SRC_DAEMON_DAEMON_H_
