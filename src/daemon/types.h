// Shared record types between Puddled, its registry tables, and clients.
#ifndef SRC_DAEMON_TYPES_H_
#define SRC_DAEMON_TYPES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/uuid.h"
#include "src/puddles/format.h"

namespace puddled {

using puddles::PuddleKind;
using puddles::Uuid;

// Caller identity for the UNIX-like permission model (§4.6). In socket mode
// this comes from SO_PEERCRED; in embedded mode from the process itself.
struct Credentials {
  uint32_t uid = 0;
  uint32_t gid = 0;

  static Credentials Self();
};

// One registered puddle. Value type of the puddles registry table.
struct PuddleRecord {
  Uuid uuid;
  Uuid pool_uuid;
  uint32_t kind;  // PuddleKind.
  uint32_t mode;  // UNIX permission bits (0600 style).
  uint32_t owner_uid;
  uint32_t owner_gid;
  uint64_t base_addr;  // Assigned address of the file start in puddle space.
  uint64_t file_size;
  uint64_t heap_size;
  uint64_t prev_base;  // Non-zero while a relocation is outstanding.
  uint32_t flags;      // Mirror of the header's PuddleFlags.
  uint32_t reserved;
};

struct PoolRecord {
  Uuid pool_uuid;
  Uuid meta_puddle;
  char name[64];
  uint32_t owner_uid;
  uint32_t owner_gid;
  uint32_t mode;
  uint32_t reserved;
};

// Pointer map for one type (§4.2): "each element contains the offset of a
// pointer within the object".
inline constexpr uint32_t kMaxPtrFields = 30;

struct PtrMapRecord {
  uint64_t type_id;
  uint32_t num_fields;
  uint32_t object_size;  // sizeof(T): pointer discovery in arrays strides by this.
  uint32_t field_offsets[kMaxPtrFields];
  // Optional homogeneous pointer-array region, for wide nodes whose fan-out
  // exceeds kMaxPtrFields (e.g. an ART Node256's 256 child slots): pointers
  // additionally live at repeat_offset + i*8 for i in [0, repeat_count).
  uint32_t repeat_offset;
  uint32_t repeat_count;  // 0 = no repeat region.
};

struct LogSpaceRecord {
  Uuid uuid;
  uint32_t owner_uid;
  uint32_t owner_gid;
  uint32_t reserved;
};

// What clients get back about a puddle (plus an fd over the socket).
struct PuddleInfo {
  Uuid uuid;
  Uuid pool_uuid;
  uint32_t kind = 0;
  uint64_t base_addr = 0;
  uint64_t file_size = 0;
  uint64_t heap_size = 0;
  uint64_t prev_base = 0;
  uint32_t flags = 0;

  static PuddleInfo FromRecord(const PuddleRecord& record) {
    PuddleInfo info;
    info.uuid = record.uuid;
    info.pool_uuid = record.pool_uuid;
    info.kind = record.kind;
    info.base_addr = record.base_addr;
    info.file_size = record.file_size;
    info.heap_size = record.heap_size;
    info.prev_base = record.prev_base;
    info.flags = record.flags;
    return info;
  }
};

struct PoolInfo {
  Uuid pool_uuid;
  Uuid meta_puddle;
  char name[64] = {};
};

// One latency histogram row of a STATS response; times in nanoseconds,
// percentiles carry the log-bucket quantization (~3% relative error).
struct StatsHistRow {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};

// The STATS response: the serving process's telemetry snapshot. Name-keyed on
// the wire so counter sets can evolve without breaking old readers — a client
// renders whatever names arrive rather than indexing a shared enum.
struct StatsReport {
  uint64_t live_threads = 0;
  uint64_t retired_threads = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> daemon_ops;  // Nonzero ops only.
  std::vector<StatsHistRow> hists;
};

}  // namespace puddled

#endif  // SRC_DAEMON_TYPES_H_
