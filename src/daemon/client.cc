#include "src/daemon/client.h"

#include <unistd.h>

#include "src/daemon/protocol.h"

namespace puddled {

using puddles::WireReader;
using puddles::WireWriter;

puddles::Result<std::unique_ptr<SocketDaemonClient>> SocketDaemonClient::Connect(
    const std::string& socket_path) {
  ASSIGN_OR_RETURN(puddles::UnixSocket socket, puddles::UnixSocket::Connect(socket_path));
  return std::unique_ptr<SocketDaemonClient>(new SocketDaemonClient(std::move(socket)));
}

puddles::Result<puddles::IpcMessage> SocketDaemonClient::RoundTrip(
    const std::vector<uint8_t>& request) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(socket_.Send(request));
  return socket_.Recv();
}

namespace {

// Parses the leading Status of a response; on error closes any attached fds.
puddles::Status TakeStatus(puddles::IpcMessage& message, WireReader& reader) {
  puddles::Status status;
  puddles::Status parse = reader.GetStatus(&status);
  if (!parse.ok()) {
    status = parse;
  }
  if (!status.ok()) {
    for (int fd : message.fds) {
      ::close(fd);
    }
    message.fds.clear();
  }
  return status;
}

}  // namespace

puddles::Status SocketDaemonClient::Ping() {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kPing));
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Result<std::pair<PuddleInfo, int>> SocketDaemonClient::CreatePuddle(
    PuddleKind kind, size_t heap_size, const Uuid& pool_uuid, uint32_t mode) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kCreatePuddle));
  writer.PutU32(static_cast<uint32_t>(kind));
  writer.PutU64(heap_size);
  writer.PutUuid(pool_uuid);
  writer.PutU32(mode);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PuddleInfo info;
  RETURN_IF_ERROR(DecodePuddleInfo(&reader, &info));
  if (message.fds.size() != 1) {
    return puddles::InternalError("expected exactly one puddle fd");
  }
  return std::make_pair(info, message.fds[0]);
}

puddles::Result<std::pair<PuddleInfo, int>> SocketDaemonClient::GetPuddle(const Uuid& uuid,
                                                                          bool write) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kGetPuddle));
  writer.PutUuid(uuid);
  writer.PutU8(write ? 1 : 0);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PuddleInfo info;
  RETURN_IF_ERROR(DecodePuddleInfo(&reader, &info));
  if (message.fds.size() != 1) {
    return puddles::InternalError("expected exactly one puddle fd");
  }
  return std::make_pair(info, message.fds[0]);
}

puddles::Result<PuddleInfo> SocketDaemonClient::StatPuddle(const Uuid& uuid) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kStatPuddle));
  writer.PutUuid(uuid);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PuddleInfo info;
  RETURN_IF_ERROR(DecodePuddleInfo(&reader, &info));
  return info;
}

puddles::Result<PuddleInfo> SocketDaemonClient::FindPuddleByAddr(uint64_t addr) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kFindByAddr));
  writer.PutU64(addr);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PuddleInfo info;
  RETURN_IF_ERROR(DecodePuddleInfo(&reader, &info));
  return info;
}

puddles::Status SocketDaemonClient::DeletePuddle(const Uuid& uuid) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kDeletePuddle));
  writer.PutUuid(uuid);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Result<PoolInfo> SocketDaemonClient::CreatePool(const std::string& name,
                                                         uint32_t mode) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kCreatePool));
  writer.PutString(name);
  writer.PutU32(mode);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PoolInfo info;
  RETURN_IF_ERROR(DecodePoolInfo(&reader, &info));
  return info;
}

puddles::Result<PoolInfo> SocketDaemonClient::OpenPool(const std::string& name) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kOpenPool));
  writer.PutString(name);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PoolInfo info;
  RETURN_IF_ERROR(DecodePoolInfo(&reader, &info));
  return info;
}

puddles::Status SocketDaemonClient::RegisterLogSpace(const Uuid& uuid) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kRegisterLogSpace));
  writer.PutUuid(uuid);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Status SocketDaemonClient::RegisterPtrMap(const PtrMapRecord& record) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kRegisterPtrMap));
  EncodePtrMap(&writer, record);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Result<PtrMapRecord> SocketDaemonClient::GetPtrMap(uint64_t type_id) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kGetPtrMap));
  writer.PutU64(type_id);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  PtrMapRecord record;
  RETURN_IF_ERROR(DecodePtrMap(&reader, &record));
  return record;
}

puddles::Status SocketDaemonClient::CompleteRewrite(const Uuid& uuid) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kCompleteRewrite));
  writer.PutUuid(uuid);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Status SocketDaemonClient::ExportPool(const std::string& name,
                                               const std::string& dest) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kExportPool));
  writer.PutString(name);
  writer.PutString(dest);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  return TakeStatus(message, reader);
}

puddles::Result<ImportResult> SocketDaemonClient::ImportPool(const std::string& src,
                                                             const std::string& new_name,
                                                             uint32_t mode) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kImportPool));
  writer.PutString(src);
  writer.PutString(new_name);
  writer.PutU32(mode);
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  ImportResult result;
  RETURN_IF_ERROR(DecodeImportResult(&reader, &result));
  return result;
}

// Embedded mode shares the process (and therefore the telemetry registry)
// with the daemon, so the snapshot is taken directly — no dispatch, and no
// kDaemonRequest bump, mirroring how EmbeddedDaemonClient::Ping never
// touches the wire.
puddles::Result<StatsReport> EmbeddedDaemonClient::FetchStats() { return BuildStatsReport(); }

puddles::Result<StatsReport> SocketDaemonClient::FetchStats() {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(Op::kStats));
  ASSIGN_OR_RETURN(auto message, RoundTrip(writer.bytes()));
  WireReader reader(message.bytes);
  RETURN_IF_ERROR(TakeStatus(message, reader));
  StatsReport report;
  RETURN_IF_ERROR(DecodeStatsReport(&reader, &report));
  return report;
}

}  // namespace puddled
