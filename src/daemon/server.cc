#include "src/daemon/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include "src/common/log.h"
#include "src/daemon/protocol.h"

namespace puddled {

puddles::Result<std::unique_ptr<Server>> Server::Start(Daemon* daemon,
                                                       const std::string& socket_path) {
  std::unique_ptr<Server> server(new Server(daemon, socket_path));
  ASSIGN_OR_RETURN(server->listener_, puddles::UnixSocketServer::Bind(socket_path));
  server->accept_thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Shutdown unblocks the accept loop but keeps the fd alive until the
  // thread is joined — closing first would race Accept() against fd reuse
  // (caught by ThreadSanitizer on the socket_daemon tests).
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
    // Unblock connection threads parked in recvmsg on still-open clients.
    for (int fd : connection_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    connection_fds_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto connection = listener_.Accept();
    if (!connection.ok()) {
      if (!stopping_.load()) {
        PUD_LOG_WARN("accept failed: %s", connection.status().ToString().c_str());
      }
      return;
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_fds_.push_back(connection->fd());
    connection_threads_.emplace_back(
        [this, socket = std::make_shared<puddles::UnixSocket>(std::move(*connection))]() mutable {
          ServeConnection(std::move(*socket));
        });
  }
}

void Server::ServeConnection(puddles::UnixSocket socket) {
  auto creds_result = socket.Credentials();
  Credentials creds = Credentials::Self();
  if (creds_result.ok()) {
    creds.uid = creds_result->uid;
    creds.gid = creds_result->gid;
  }

  while (!stopping_.load()) {
    auto message = socket.Recv();
    if (!message.ok()) {
      return;  // Peer closed (or error): end this connection.
    }
    // Requests carry no fds; close any unexpected ones.
    for (int fd : message->fds) {
      ::close(fd);
    }
    DispatchResult result = DispatchRequest(*daemon_, creds, message->bytes);
    std::vector<int> fds;
    if (result.fd >= 0) {
      fds.push_back(result.fd);
    }
    puddles::Status sent = socket.Send(result.response, fds);
    if (result.fd >= 0) {
      ::close(result.fd);  // The kernel duplicated it into the peer.
    }
    if (!sent.ok()) {
      return;
    }
  }
}

}  // namespace puddled
