#include "src/daemon/server.h"

#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/log.h"
#include "src/daemon/protocol.h"
#include "src/stats/stats.h"

namespace puddled {
namespace {

// Epoll tags for the two non-connection descriptors (connection ids start at
// 2, see Server::next_conn_id_).
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;

// Must match the Recv() cap in src/ipc/unix_socket.cc: anything larger is a
// protocol violation, not a big request.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Read chunking: one recvmsg buffer, and the per-readiness-event budget so a
// single firehose client cannot starve its neighbours on the loop thread
// (level-triggered epoll re-reports leftover socket data immediately).
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kReadBudget = 256 * 1024;

// How long the event loop pauses accepting after a transient accept failure
// (fd exhaustion): the listener is deregistered and re-armed on this timer.
constexpr int kAcceptRetryMs = 10;

Credentials ConnCredentials(const puddles::UnixSocket& socket) {
  Credentials creds = Credentials::Self();
  auto peer = socket.Credentials();
  if (peer.ok()) {
    creds.uid = peer->uid;
    creds.gid = peer->gid;
  }
  return creds;
}

}  // namespace

puddles::Result<std::unique_ptr<Server>> Server::Start(Daemon* daemon,
                                                       const std::string& socket_path) {
  return Start(daemon, socket_path, Options{});
}

puddles::Result<std::unique_ptr<Server>> Server::Start(Daemon* daemon,
                                                       const std::string& socket_path,
                                                       const Options& options) {
  std::unique_ptr<Server> server(new Server(daemon, socket_path, options));
  ASSIGN_OR_RETURN(server->listener_, puddles::UnixSocketServer::Bind(socket_path));
  if (options.mode == Mode::kEventLoop) {
    RETURN_IF_ERROR(server->listener_.SetNonBlocking(true));
    ASSIGN_OR_RETURN(server->epoll_, puddles::EpollSet::Create());
    ASSIGN_OR_RETURN(server->wakeup_, puddles::EventFd::Create());
    RETURN_IF_ERROR(server->epoll_.Add(server->listener_.fd(), EPOLLIN, kListenerTag));
    RETURN_IF_ERROR(server->epoll_.Add(server->wakeup_.fd(), EPOLLIN, kWakeupTag));
    int workers = options.worker_threads;
    if (workers <= 0) {
      workers = std::clamp(static_cast<int>(std::thread::hardware_concurrency()), 2, 8);
    }
    server->workers_.reserve(workers);
    for (int i = 0; i < workers; ++i) {
      server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
    }
    server->loop_thread_ = std::thread([raw = server.get()] { raw->EventLoop(); });
  } else {
    server->accept_thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  }
  return server;
}

Server::~Server() { Stop(); }

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.closed = closed_.load(std::memory_order_relaxed);
  out.accept_retries = accept_retries_.load(std::memory_order_relaxed);
  out.active = out.accepted - out.closed;
  return out;
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (options_.mode == Mode::kEventLoop) {
    wakeup_.Signal();
    if (loop_thread_.joinable()) {
      loop_thread_.join();
    }
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      workers_stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    // Responses staged by workers after the loop exited: every connection is
    // already marked closed, so workers dropped their fds themselves.
    listener_.Close();
    return;
  }

  // Thread-per-connection mode. Shutdown unblocks the accept loop but keeps
  // the fd alive until the thread is joined — closing first would race
  // Accept() against fd reuse.
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(tp_mu_);
    for (auto& [id, entry] : tp_conns_) {
      // Unblock threads parked in recvmsg — but only on still-live fds. A
      // finished thread may already have closed its descriptor, and the
      // number may belong to an unrelated file by now (the fd-reuse bug the
      // finished set exists to prevent).
      if (tp_finished_.find(id) == tp_finished_.end()) {
        ::shutdown(entry.fd, SHUT_RDWR);
      }
      threads.push_back(std::move(entry.thread));
    }
    tp_conns_.clear();
    tp_finished_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

// ---------------------------------------------------------------------------
// Event-loop mode
// ---------------------------------------------------------------------------

void Server::EventLoop() {
  epoll_event events[64];
  bool accept_paused = false;
  while (true) {
    auto ready = epoll_.Wait(events, 64, accept_paused ? kAcceptRetryMs : -1);
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if (!ready.ok()) {
      PUD_LOG_WARN("event loop wait failed: %s", ready.status().ToString().c_str());
      break;
    }
    if (accept_paused) {
      // Backoff tick (or unrelated activity): descriptor pressure may have
      // eased, so try draining the backlog and re-arm the listener.
      if (AcceptReady() && epoll_.Add(listener_.fd(), EPOLLIN, kListenerTag).ok()) {
        accept_paused = false;
      }
    }
    for (int i = 0; i < *ready; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (!AcceptReady()) {
          (void)epoll_.Del(listener_.fd());
          accept_paused = true;
        }
        continue;
      }
      if (tag == kWakeupTag) {
        wakeup_.Drain();
        FlushStaged();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) {
        continue;  // Closed earlier in this batch.
      }
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & EPOLLERR) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLHUP)) {
        ReadConn(conn);
      }
      if (!conn->closed && (events[i].events & EPOLLOUT)) {
        (void)FlushConn(conn);
      }
    }
  }
  // Teardown: drop every live connection. Workers still holding one observe
  // `closed` under the connection mutex and discard their results.
  std::vector<std::shared_ptr<Connection>> leftover;
  leftover.reserve(conns_.size());
  for (auto& [id, conn] : conns_) {
    leftover.push_back(conn);
  }
  for (auto& conn : leftover) {
    CloseConn(conn);
  }
}

bool Server::AcceptReady() {
  while (true) {
    int err = 0;
    puddles::UnixSocket socket = listener_.TryAccept(&err, /*nonblocking_socket=*/true);
    if (socket.valid()) {
      RegisterConn(std::move(socket));
      continue;
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      return true;  // Backlog drained.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return true;
    }
    accept_retries_.fetch_add(1, std::memory_order_relaxed);
    PUDDLES_COUNT(kDaemonAcceptRetry);
    if (err == ECONNABORTED) {
      continue;  // Peer gave up mid-handshake; nothing to back off for.
    }
    // Descriptor/memory pressure (EMFILE, ENFILE, ENOBUFS, ...) or anything
    // unexpected: pause accepting and retry on a timer. Exiting is the bug
    // this loop replaced — the daemon would never accept again.
    PUD_LOG_WARN("accept failed (errno=%d): pausing accepts for %d ms", err, kAcceptRetryMs);
    return false;
  }
}

void Server::RegisterConn(puddles::UnixSocket socket) {
  auto conn = std::make_shared<Connection>();
  conn->id = next_conn_id_++;
  conn->creds = ConnCredentials(socket);
  conn->socket = std::move(socket);
  conn->armed_events = EPOLLIN;
  if (!epoll_.Add(conn->socket.fd(), EPOLLIN, conn->id).ok()) {
    return;  // Connection dropped; the socket closes on scope exit.
  }
  conns_.emplace(conn->id, conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  PUDDLES_COUNT(kDaemonConnAccepted);
}

void Server::ReadConn(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->reading_paused || conn->peer_eof) {
    return;
  }
  uint8_t buf[kReadChunk];
  size_t budget = kReadBudget;
  while (budget > 0) {
    std::vector<int> fds;
    auto progress = conn->socket.RecvSome(buf, std::min(sizeof(buf), budget), &fds);
    // Requests carry no fds; close any unexpected ones.
    for (int fd : fds) {
      ::close(fd);
    }
    if (!progress.ok()) {
      CloseConn(conn);
      return;
    }
    if (progress->would_block) {
      break;
    }
    if (progress->eof) {
      conn->peer_eof = true;
      break;
    }
    conn->inbuf.insert(conn->inbuf.end(), buf, buf + progress->bytes);
    budget -= progress->bytes;
  }
  ParseFrames(conn);
  if (conn->closed) {
    return;
  }
  UpdateConnEvents(conn);
  MaybeClose(conn);
}

void Server::ParseFrames(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) {
    return;
  }
  size_t backlog;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    backlog = conn->pending.size();
  }
  bool queued = false;
  while (backlog < options_.max_pipelined) {
    const size_t avail = conn->inbuf.size() - conn->inbuf_off;
    if (avail < 4) {
      break;
    }
    uint32_t length = 0;
    std::memcpy(&length, conn->inbuf.data() + conn->inbuf_off, 4);
    if (length > kMaxFrameBytes) {
      PUD_LOG_WARN("dropping connection %llu: implausible frame length",
                   static_cast<unsigned long long>(conn->id));
      CloseConn(conn);
      return;
    }
    if (avail - 4 < length) {
      break;
    }
    const uint8_t* payload = conn->inbuf.data() + conn->inbuf_off + 4;
    std::vector<uint8_t> request(payload, payload + length);
    conn->inbuf_off += 4 + static_cast<size_t>(length);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->pending.push_back(std::move(request));
      backlog = conn->pending.size();
    }
    queued = true;
  }
  if (conn->inbuf_off > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<ptrdiff_t>(conn->inbuf_off));
    conn->inbuf_off = 0;
  }
  if (backlog >= options_.max_pipelined && !conn->reading_paused) {
    // Pipelining backpressure: stop reading until the dispatch backlog
    // halves (MaybeResumeReading). Frames already in inbuf wait there.
    conn->reading_paused = true;
    UpdateConnEvents(conn);
  }
  if (queued) {
    ScheduleConn(conn);
  }
}

void Server::ScheduleConn(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    // At most one worker dispatches a connection at a time — that, plus the
    // FIFO pending queue, is what keeps pipelined responses in request
    // order.
    if (conn->scheduled || conn->closed || conn->pending.empty()) {
      return;
    }
    conn->scheduled = true;
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(conn);
  }
  work_cv_.notify_one();
}

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) {
        return;  // workers_stop_ and nothing left to drain.
      }
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    DispatchConn(conn);
  }
}

void Server::DispatchConn(const std::shared_ptr<Connection>& conn) {
  while (true) {
    std::deque<std::vector<uint8_t>> batch;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) {
        conn->scheduled = false;
        conn->pending.clear();
        return;
      }
      if (conn->pending.empty()) {
        conn->scheduled = false;
        break;
      }
      batch.swap(conn->pending);
    }
    std::deque<OutFrame> responses;
    for (const std::vector<uint8_t>& request : batch) {
      DispatchResult result = DispatchRequest(*daemon_, conn->creds, request);
      OutFrame frame;
      frame.fd = result.fd;
      const uint32_t length = static_cast<uint32_t>(result.response.size());
      frame.bytes.resize(4 + result.response.size());
      std::memcpy(frame.bytes.data(), &length, 4);
      std::memcpy(frame.bytes.data() + 4, result.response.data(), result.response.size());
      responses.push_back(std::move(frame));
    }
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) {
        dropped = true;
      } else {
        for (OutFrame& frame : responses) {
          conn->outbox.push_back(std::move(frame));
        }
      }
    }
    if (dropped) {
      for (OutFrame& frame : responses) {
        if (frame.fd >= 0) {
          ::close(frame.fd);
        }
      }
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->scheduled = false;
      conn->pending.clear();
      return;
    }
    NotifyFlush(conn);
  }
  // Final wake after `scheduled` flipped false: a wake consumed before the
  // flip would leave an EOF'd connection stranded (MaybeClose would still
  // see it scheduled and never get another signal).
  NotifyFlush(conn);
}

void Server::NotifyFlush(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_queue_.push_back(conn);
  }
  wakeup_.Signal();
}

void Server::FlushStaged() {
  std::vector<std::shared_ptr<Connection>> batch;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    batch.swap(flush_queue_);
  }
  for (const std::shared_ptr<Connection>& conn : batch) {
    if (conn->closed) {
      continue;
    }
    if (FlushConn(conn)) {
      MaybeResumeReading(conn);
    }
  }
}

bool Server::FlushConn(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->outbox.empty()) {
      conn->writing.push_back(std::move(conn->outbox.front()));
      conn->outbox.pop_front();
    }
  }
  while (!conn->writing.empty()) {
    OutFrame& front = conn->writing.front();
    if (front.fd >= 0) {
      // fd-carrying frames go alone: the descriptor must ride the ancillary
      // data of a byte belonging to its own frame.
      std::vector<int> fds;
      if (conn->write_off == 0) {
        fds.push_back(front.fd);
      }
      auto progress = conn->socket.SendSome(front.bytes.data() + conn->write_off,
                                            front.bytes.size() - conn->write_off, fds);
      if (!progress.ok()) {
        CloseConn(conn);
        return false;
      }
      if (progress->would_block) {
        break;
      }
      if (progress->bytes > 0 && conn->write_off == 0) {
        // The kernel duplicated the fd into the peer with the first fragment.
        ::close(front.fd);
        front.fd = -1;
      }
      conn->write_off += progress->bytes;
      if (conn->write_off == front.bytes.size()) {
        conn->writing.pop_front();
        conn->write_off = 0;
      }
      continue;
    }
    // Coalesce the leading run of fd-less frames into one vectored send —
    // a pipelined response backlog costs one sendmsg, not one per frame.
    struct iovec iov[64];
    int iovcnt = 0;
    size_t skip = conn->write_off;
    for (const OutFrame& frame : conn->writing) {
      if (frame.fd >= 0 || iovcnt == 64) {
        break;
      }
      iov[iovcnt].iov_base = const_cast<uint8_t*>(frame.bytes.data()) + skip;
      iov[iovcnt].iov_len = frame.bytes.size() - skip;
      skip = 0;
      ++iovcnt;
    }
    auto progress = conn->socket.SendSomeV(iov, iovcnt);
    if (!progress.ok()) {
      CloseConn(conn);
      return false;
    }
    if (progress->would_block) {
      break;
    }
    size_t sent = progress->bytes;
    while (sent > 0) {
      OutFrame& done = conn->writing.front();
      const size_t remaining = done.bytes.size() - conn->write_off;
      if (sent >= remaining) {
        sent -= remaining;
        conn->writing.pop_front();
        conn->write_off = 0;
      } else {
        conn->write_off += sent;
        sent = 0;
      }
    }
  }
  UpdateConnEvents(conn);
  MaybeClose(conn);
  return !conn->closed;
}

void Server::MaybeResumeReading(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || !conn->reading_paused) {
    return;
  }
  size_t backlog;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    backlog = conn->pending.size();
  }
  if (backlog * 2 > options_.max_pipelined) {
    return;
  }
  conn->reading_paused = false;
  UpdateConnEvents(conn);
  // Frames that arrived before the pause may still sit fully-buffered in
  // inbuf; epoll will not re-report them.
  ParseFrames(conn);
  if (!conn->closed) {
    MaybeClose(conn);
  }
}

void Server::MaybeClose(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || !conn->peer_eof || !conn->writing.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->scheduled || !conn->pending.empty() || !conn->outbox.empty()) {
      return;
    }
  }
  // Peer finished sending and every accepted request has been answered. Any
  // leftover inbuf bytes are a truncated trailing request — dropped.
  CloseConn(conn);
}

void Server::CloseConn(const std::shared_ptr<Connection>& conn) {
  std::deque<OutFrame> staged;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    staged.swap(conn->outbox);
    conn->pending.clear();
  }
  for (OutFrame& frame : staged) {
    if (frame.fd >= 0) {
      ::close(frame.fd);
    }
  }
  for (OutFrame& frame : conn->writing) {
    if (frame.fd >= 0) {
      ::close(frame.fd);
    }
  }
  conn->writing.clear();
  (void)epoll_.Del(conn->socket.fd());
  conn->socket.Close();
  conns_.erase(conn->id);
  closed_.fetch_add(1, std::memory_order_relaxed);
  PUDDLES_COUNT(kDaemonConnClosed);
}

void Server::UpdateConnEvents(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) {
    return;
  }
  uint32_t wanted = 0;
  if (!conn->reading_paused && !conn->peer_eof) {
    wanted |= EPOLLIN;
  }
  if (!conn->writing.empty()) {
    wanted |= EPOLLOUT;
  }
  if (wanted == conn->armed_events) {
    return;
  }
  conn->armed_events = wanted;
  (void)epoll_.Mod(conn->socket.fd(), wanted, conn->id);
}

// ---------------------------------------------------------------------------
// Thread-per-connection mode (the measured baseline)
// ---------------------------------------------------------------------------

void Server::AcceptLoop() {
  int backoff_ms = 1;
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinished();
    int err = 0;
    puddles::UnixSocket socket = listener_.TryAccept(&err, /*nonblocking_socket=*/false);
    if (!socket.valid()) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;
      }
      accept_retries_.fetch_add(1, std::memory_order_relaxed);
      PUDDLES_COUNT(kDaemonAcceptRetry);
      if (err == ECONNABORTED) {
        continue;  // Peer gave up mid-handshake; nothing to back off for.
      }
      // Descriptor/memory pressure (EMFILE, ENFILE, ENOBUFS, ...) or
      // anything unexpected: log, back off, retry. Returning here is the bug
      // this loop replaced — one transient failure and the daemon would
      // never accept again.
      PUD_LOG_WARN("accept failed (errno=%d): retrying in %d ms", err, backoff_ms);
      timespec delay{backoff_ms / 1000, (backoff_ms % 1000) * 1000000L};
      ::nanosleep(&delay, nullptr);
      backoff_ms = std::min(backoff_ms * 2, 100);
      continue;
    }
    backoff_ms = 1;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    PUDDLES_COUNT(kDaemonConnAccepted);
    std::lock_guard<std::mutex> lock(tp_mu_);
    const uint64_t id = tp_next_id_++;
    ThreadConn entry;
    entry.fd = socket.fd();
    auto shared = std::make_shared<puddles::UnixSocket>(std::move(socket));
    entry.thread =
        std::thread([this, id, shared]() mutable { ServeConnection(id, std::move(*shared)); });
    tp_conns_.emplace(id, std::move(entry));
  }
}

void Server::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(tp_mu_);
    for (uint64_t id : tp_finished_) {
      auto it = tp_conns_.find(id);
      if (it == tp_conns_.end()) {
        continue;
      }
      done.push_back(std::move(it->second.thread));
      tp_conns_.erase(it);
    }
    tp_finished_.clear();
  }
  // Joins happen outside tp_mu_: a finishing thread takes the lock to mark
  // itself finished just before exiting.
  for (std::thread& thread : done) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void Server::ServeConnection(uint64_t id, puddles::UnixSocket socket) {
  Credentials creds = ConnCredentials(socket);
  while (!stopping_.load(std::memory_order_acquire)) {
    auto message = socket.Recv();
    if (!message.ok()) {
      break;  // Peer closed (or error): end this connection.
    }
    // Requests carry no fds; close any unexpected ones.
    for (int fd : message->fds) {
      ::close(fd);
    }
    DispatchResult result = DispatchRequest(*daemon_, creds, message->bytes);
    std::vector<int> fds;
    if (result.fd >= 0) {
      fds.push_back(result.fd);
    }
    puddles::Status sent = socket.Send(result.response, fds);
    if (result.fd >= 0) {
      ::close(result.fd);  // The kernel duplicated it into the peer.
    }
    if (!sent.ok()) {
      break;
    }
  }
  // Mark finished BEFORE `socket` closes (on return): the reaper joins us
  // and Stop() treats unfinished entries' fds as live to shutdown() — doing
  // either after close could hit a recycled descriptor number.
  {
    std::lock_guard<std::mutex> lock(tp_mu_);
    tp_finished_.insert(id);
  }
  closed_.fetch_add(1, std::memory_order_relaxed);
  PUDDLES_COUNT(kDaemonConnClosed);
}

}  // namespace puddled
