// The Puddled socket front end: accepts connections on a UNIX domain socket
// and dispatches requests against a Daemon, authenticating each connection
// via SO_PEERCRED (§4.6).
#ifndef SRC_DAEMON_SERVER_H_
#define SRC_DAEMON_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/daemon.h"
#include "src/ipc/unix_socket.h"

namespace puddled {

class Server {
 public:
  // Binds `socket_path` and serves `daemon` until Stop(). The daemon must
  // outlive the server.
  static puddles::Result<std::unique_ptr<Server>> Start(Daemon* daemon,
                                                        const std::string& socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& socket_path() const { return socket_path_; }
  void Stop();

 private:
  Server(Daemon* daemon, std::string socket_path)
      : daemon_(daemon), socket_path_(std::move(socket_path)) {}

  void AcceptLoop();
  void ServeConnection(puddles::UnixSocket socket);

  Daemon* daemon_;
  std::string socket_path_;
  puddles::UnixSocketServer listener_;
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;  // For shutdown() on Stop().
  std::mutex threads_mu_;
  std::atomic<bool> stopping_{false};
};

}  // namespace puddled

#endif  // SRC_DAEMON_SERVER_H_
