// The Puddled socket front end: accepts connections on a UNIX domain socket
// and dispatches requests against a Daemon, authenticating each connection
// via SO_PEERCRED (§4.6).
//
// Two serving modes (docs/daemon.md):
//   * kEventLoop (default): one epoll readiness loop owns every connection
//     fd and does all socket I/O nonblocking. Parsed requests hand off to a
//     bounded worker pool that runs DispatchRequest and stages framed
//     responses back through the loop (eventfd wakeup). Clients may pipeline
//     any number of requests on one connection; responses always come back
//     in request order because a connection is dispatched by at most one
//     worker at a time.
//   * kThreadPerConnection: blocking recv/dispatch/send loop per connection.
//     Kept as the measured baseline for bench_daemon_ycsb, with the original
//     lifecycle bugs fixed: the accept loop survives transient errors
//     (EMFILE/ECONNABORTED) with backoff instead of exiting, Stop() only
//     shuts down descriptors of still-live connections (fd numbers recycle),
//     and finished connection threads are reaped as they complete rather
//     than accumulating until Stop().
//
// Ownership rules (event mode): connection fds are owned exclusively by the
// loop thread — workers only ever touch a connection's pending/outbox queues
// under its mutex. Connections are keyed by a monotonically increasing id,
// never by fd, so a recycled fd number cannot alias a dead peer.
#ifndef SRC_DAEMON_SERVER_H_
#define SRC_DAEMON_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/daemon/daemon.h"
#include "src/ipc/epoll.h"
#include "src/ipc/unix_socket.h"

namespace puddled {

// Monotonic lifecycle counters (Server::stats()). `active` must return to
// zero once every client has disconnected — the regression surface for the
// fd-reuse and registry-leak bugs this server replaced.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t accept_retries = 0;  // Transient accept failures survived.
  uint64_t active = 0;          // accepted - closed.
};

class Server {
 public:
  enum class Mode {
    kEventLoop,
    kThreadPerConnection,
  };

  struct Options {
    Mode mode = Mode::kEventLoop;
    // Dispatch threads for the event loop; 0 = hardware_concurrency clamped
    // into [2, 8]. Ignored in thread-per-connection mode.
    int worker_threads = 0;
    // Per-connection cap on parsed-but-undispatched requests. At the cap the
    // loop stops reading that connection until the backlog halves
    // (pipelining backpressure, not an error).
    size_t max_pipelined = 256;
  };

  // Binds `socket_path` and serves `daemon` until Stop(). The daemon must
  // outlive the server.
  static puddles::Result<std::unique_ptr<Server>> Start(Daemon* daemon,
                                                        const std::string& socket_path);
  static puddles::Result<std::unique_ptr<Server>> Start(Daemon* daemon,
                                                        const std::string& socket_path,
                                                        const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& socket_path() const { return socket_path_; }
  void Stop();

  ServerStats stats() const;

 private:
  // One framed response staged for the loop to write. `fd` rides the first
  // fragment's SCM_RIGHTS and is closed locally once any byte of the frame
  // is out (the kernel has duplicated it into the peer) or on teardown.
  struct OutFrame {
    std::vector<uint8_t> bytes;  // 4-byte length header + payload.
    int fd = -1;
  };

  // Event-mode connection state machine. Loop-private fields are touched by
  // the loop thread only; the handoff queues are guarded by `mu`.
  struct Connection {
    uint64_t id = 0;
    puddles::UnixSocket socket;  // Loop-owned; workers never do socket I/O.
    Credentials creds;

    // Loop-private read/write state.
    std::vector<uint8_t> inbuf;
    size_t inbuf_off = 0;  // Consumed prefix of inbuf.
    bool peer_eof = false;
    bool reading_paused = false;
    uint32_t armed_events = 0;  // Event mask currently registered in epoll.
    std::deque<OutFrame> writing;
    size_t write_off = 0;  // Progress into writing.front().

    // Worker handoff (guarded by mu).
    std::mutex mu;
    std::deque<std::vector<uint8_t>> pending;  // Parsed requests to dispatch.
    std::deque<OutFrame> outbox;               // Responses awaiting flush.
    bool scheduled = false;  // On the work queue / being dispatched.
    bool closed = false;     // Loop dropped the connection; workers discard.
  };

  // Thread-per-connection registry entry. `finished` ids are reaped (joined
  // and erased) by the accept loop; Stop() only shuts down fds whose serving
  // thread has not yet marked itself finished — a finished thread may have
  // already closed the fd, and the number may have been recycled.
  struct ThreadConn {
    int fd = -1;
    std::thread thread;
  };

  Server(Daemon* daemon, std::string socket_path, Options options)
      : daemon_(daemon), socket_path_(std::move(socket_path)), options_(options) {}

  // ---- Event-loop mode ----
  void EventLoop();
  void WorkerLoop();
  bool AcceptReady();  // Returns false when accepting must pause (backoff).
  void RegisterConn(puddles::UnixSocket socket);
  void ReadConn(const std::shared_ptr<Connection>& conn);
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  void ScheduleConn(const std::shared_ptr<Connection>& conn);
  void DispatchConn(const std::shared_ptr<Connection>& conn);
  void NotifyFlush(const std::shared_ptr<Connection>& conn);
  void FlushStaged();
  bool FlushConn(const std::shared_ptr<Connection>& conn);
  void MaybeResumeReading(const std::shared_ptr<Connection>& conn);
  void MaybeClose(const std::shared_ptr<Connection>& conn);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void UpdateConnEvents(const std::shared_ptr<Connection>& conn);

  // ---- Thread-per-connection mode ----
  void AcceptLoop();
  void ReapFinished();
  void ServeConnection(uint64_t id, puddles::UnixSocket socket);

  Daemon* daemon_;
  std::string socket_path_;
  Options options_;
  puddles::UnixSocketServer listener_;
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> accept_retries_{0};

  // Event-loop mode.
  puddles::EpollSet epoll_;
  puddles::EventFd wakeup_;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;  // Loop-private.
  uint64_t next_conn_id_ = 2;  // 0/1 are the listener/wakeup epoll tags.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Connection>> work_queue_;
  bool workers_stop_ = false;  // Guarded by work_mu_.
  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Connection>> flush_queue_;

  // Thread-per-connection mode.
  std::thread accept_thread_;
  std::mutex tp_mu_;
  std::unordered_map<uint64_t, ThreadConn> tp_conns_;
  std::unordered_set<uint64_t> tp_finished_;
  uint64_t tp_next_id_ = 1;  // Guarded by tp_mu_.
};

}  // namespace puddled

#endif  // SRC_DAEMON_SERVER_H_
