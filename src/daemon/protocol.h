// Wire protocol between Libpuddles and Puddled. Requests are one message
// (op + fields); responses are one message (Status + fields), with puddle
// fds riding SCM_RIGHTS.
#ifndef SRC_DAEMON_PROTOCOL_H_
#define SRC_DAEMON_PROTOCOL_H_

#include <cstdint>

#include "src/daemon/daemon.h"
#include "src/daemon/types.h"
#include "src/ipc/wire.h"

namespace puddled {

enum class Op : uint32_t {
  kPing = 1,
  kCreatePuddle = 2,
  kGetPuddle = 3,
  kStatPuddle = 4,
  kFindByAddr = 5,
  kDeletePuddle = 6,
  kCreatePool = 7,
  kOpenPool = 8,
  kRegisterLogSpace = 9,
  kRegisterPtrMap = 10,
  kGetPtrMap = 11,
  kCompleteRewrite = 12,
  kExportPool = 13,
  kImportPool = 14,
  kStats = 15,
};

// Stable lowercase wire/display name for an opcode ("ping", "stats", ...);
// "unknown" for values outside the enum.
const char* OpName(Op op);

void EncodePuddleInfo(puddles::WireWriter* writer, const PuddleInfo& info);
puddles::Status DecodePuddleInfo(puddles::WireReader* reader, PuddleInfo* info);
void EncodePoolInfo(puddles::WireWriter* writer, const PoolInfo& info);
puddles::Status DecodePoolInfo(puddles::WireReader* reader, PoolInfo* info);
void EncodePtrMap(puddles::WireWriter* writer, const PtrMapRecord& record);
puddles::Status DecodePtrMap(puddles::WireReader* reader, PtrMapRecord* record);
void EncodeImportResult(puddles::WireWriter* writer, const ImportResult& result);
puddles::Status DecodeImportResult(puddles::WireReader* reader, ImportResult* result);

// Snapshots this process's telemetry (src/stats) into a wire-ready report:
// counters and per-opcode totals by name, histogram ticks converted to
// nanoseconds. Zero-valued counters are included (so dashboards see the full
// catalog); all-zero builds (-DPUDDLES_STATS=0) produce an all-zero report.
StatsReport BuildStatsReport();
void EncodeStatsReport(puddles::WireWriter* writer, const StatsReport& report);
puddles::Status DecodeStatsReport(puddles::WireReader* reader, StatsReport* report);

// Server side: executes one decoded request against the daemon, producing the
// response payload and (possibly) an fd to attach. Used by the socket server
// and directly by protocol tests.
struct DispatchResult {
  std::vector<uint8_t> response;
  int fd = -1;  // Attached to the response when >= 0; ownership passes out.
};

DispatchResult DispatchRequest(Daemon& daemon, const Credentials& creds,
                               const std::vector<uint8_t>& request);

}  // namespace puddled

#endif  // SRC_DAEMON_PROTOCOL_H_
