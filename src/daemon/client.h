// Client-side access to Puddled. Two transports, one interface:
//   * EmbeddedDaemonClient — direct calls into an in-process Daemon (tests,
//     benches, single-process deployments).
//   * SocketDaemonClient — the production path over the UNIX domain socket,
//     with fd capabilities received via SCM_RIGHTS.
#ifndef SRC_DAEMON_CLIENT_H_
#define SRC_DAEMON_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/daemon/daemon.h"
#include "src/daemon/types.h"
#include "src/ipc/unix_socket.h"

namespace puddled {

class DaemonClient {
 public:
  virtual ~DaemonClient() = default;

  virtual puddles::Status Ping() = 0;
  virtual puddles::Result<std::pair<PuddleInfo, int>> CreatePuddle(
      PuddleKind kind, size_t heap_size, const Uuid& pool_uuid = Uuid::Nil(),
      uint32_t mode = 0600) = 0;
  virtual puddles::Result<std::pair<PuddleInfo, int>> GetPuddle(const Uuid& uuid,
                                                                bool write) = 0;
  virtual puddles::Result<PuddleInfo> StatPuddle(const Uuid& uuid) = 0;
  virtual puddles::Result<PuddleInfo> FindPuddleByAddr(uint64_t addr) = 0;
  virtual puddles::Status DeletePuddle(const Uuid& uuid) = 0;
  virtual puddles::Result<PoolInfo> CreatePool(const std::string& name,
                                               uint32_t mode = 0600) = 0;
  virtual puddles::Result<PoolInfo> OpenPool(const std::string& name) = 0;
  virtual puddles::Status RegisterLogSpace(const Uuid& uuid) = 0;
  virtual puddles::Status RegisterPtrMap(const PtrMapRecord& record) = 0;
  virtual puddles::Result<PtrMapRecord> GetPtrMap(uint64_t type_id) = 0;
  virtual puddles::Status CompleteRewrite(const Uuid& uuid) = 0;
  virtual puddles::Status ExportPool(const std::string& name, const std::string& dest) = 0;
  virtual puddles::Result<ImportResult> ImportPool(const std::string& src,
                                                   const std::string& new_name,
                                                   uint32_t mode = 0600) = 0;
  // Telemetry snapshot of the serving process: counters, per-opcode request
  // totals, and latency percentiles (the STATS opcode over the socket; the
  // in-process snapshot when embedded).
  virtual puddles::Result<StatsReport> FetchStats() = 0;
};

class EmbeddedDaemonClient : public DaemonClient {
 public:
  // Calls run with the given credentials (defaults to the process identity).
  explicit EmbeddedDaemonClient(Daemon* daemon, Credentials creds = Credentials::Self())
      : daemon_(daemon), creds_(creds) {}

  puddles::Status Ping() override { return puddles::OkStatus(); }
  puddles::Result<std::pair<PuddleInfo, int>> CreatePuddle(PuddleKind kind, size_t heap_size,
                                                           const Uuid& pool_uuid,
                                                           uint32_t mode) override {
    return daemon_->CreatePuddle(kind, heap_size, creds_, pool_uuid, mode);
  }
  puddles::Result<std::pair<PuddleInfo, int>> GetPuddle(const Uuid& uuid, bool write) override {
    return daemon_->GetPuddle(uuid, creds_, write);
  }
  puddles::Result<PuddleInfo> StatPuddle(const Uuid& uuid) override {
    return daemon_->StatPuddle(uuid, creds_);
  }
  puddles::Result<PuddleInfo> FindPuddleByAddr(uint64_t addr) override {
    return daemon_->FindPuddleByAddr(addr, creds_);
  }
  puddles::Status DeletePuddle(const Uuid& uuid) override {
    return daemon_->DeletePuddle(uuid, creds_);
  }
  puddles::Result<PoolInfo> CreatePool(const std::string& name, uint32_t mode) override {
    return daemon_->CreatePool(name, creds_, mode);
  }
  puddles::Result<PoolInfo> OpenPool(const std::string& name) override {
    return daemon_->OpenPool(name, creds_);
  }
  puddles::Status RegisterLogSpace(const Uuid& uuid) override {
    return daemon_->RegisterLogSpace(uuid, creds_);
  }
  puddles::Status RegisterPtrMap(const PtrMapRecord& record) override {
    return daemon_->RegisterPtrMap(record);
  }
  puddles::Result<PtrMapRecord> GetPtrMap(uint64_t type_id) override {
    return daemon_->GetPtrMap(type_id);
  }
  puddles::Status CompleteRewrite(const Uuid& uuid) override {
    return daemon_->CompleteRewrite(uuid, creds_);
  }
  puddles::Status ExportPool(const std::string& name, const std::string& dest) override {
    return daemon_->ExportPool(name, dest, creds_);
  }
  puddles::Result<ImportResult> ImportPool(const std::string& src, const std::string& new_name,
                                           uint32_t mode) override {
    return daemon_->ImportPool(src, new_name, creds_, mode);
  }
  puddles::Result<StatsReport> FetchStats() override;  // client.cc (needs protocol.h).

 private:
  Daemon* daemon_;
  Credentials creds_;
};

class SocketDaemonClient : public DaemonClient {
 public:
  static puddles::Result<std::unique_ptr<SocketDaemonClient>> Connect(
      const std::string& socket_path);

  puddles::Status Ping() override;
  puddles::Result<std::pair<PuddleInfo, int>> CreatePuddle(PuddleKind kind, size_t heap_size,
                                                           const Uuid& pool_uuid,
                                                           uint32_t mode) override;
  puddles::Result<std::pair<PuddleInfo, int>> GetPuddle(const Uuid& uuid, bool write) override;
  puddles::Result<PuddleInfo> StatPuddle(const Uuid& uuid) override;
  puddles::Result<PuddleInfo> FindPuddleByAddr(uint64_t addr) override;
  puddles::Status DeletePuddle(const Uuid& uuid) override;
  puddles::Result<PoolInfo> CreatePool(const std::string& name, uint32_t mode) override;
  puddles::Result<PoolInfo> OpenPool(const std::string& name) override;
  puddles::Status RegisterLogSpace(const Uuid& uuid) override;
  puddles::Status RegisterPtrMap(const PtrMapRecord& record) override;
  puddles::Result<PtrMapRecord> GetPtrMap(uint64_t type_id) override;
  puddles::Status CompleteRewrite(const Uuid& uuid) override;
  puddles::Status ExportPool(const std::string& name, const std::string& dest) override;
  puddles::Result<ImportResult> ImportPool(const std::string& src, const std::string& new_name,
                                           uint32_t mode) override;
  puddles::Result<StatsReport> FetchStats() override;

 private:
  explicit SocketDaemonClient(puddles::UnixSocket socket) : socket_(std::move(socket)) {}

  // One round trip; returns the response payload after the leading Status.
  puddles::Result<puddles::IpcMessage> RoundTrip(const std::vector<uint8_t>& request);

  std::mutex mu_;  // Serializes request/response pairs on the shared socket.
  puddles::UnixSocket socket_;
};

}  // namespace puddled

#endif  // SRC_DAEMON_CLIENT_H_
